package fault

import (
	"context"
	"math/bits"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// DeductiveSim implements Armstrong's deductive fault simulation
// ([100] in the paper): one true-value pass per pattern during which
// each net carries the *list* of faults that would complement it.
// All faults are processed simultaneously per pattern — the historical
// alternative to parallel-pattern simulation, reproduced here with
// bitset fault lists.
//
// Propagation rules (exact under the single-fault assumption):
//
//   - a source net n with value v contributes its own stem fault s-a-¬v;
//   - each gate input pin adds its branch fault s-a-¬v to the incoming
//     list;
//   - AND-type gate with controlling inputs S: the output flips iff a
//     fault flips every pin in S and no pin outside S, so
//     L = (∩_{S}) \ (∪_{¬S});
//   - AND-type gate with no controlling input: any single flipped pin
//     flips the output, so L = ∪ over pins;
//   - XOR-type gate: the output flips iff an odd number of pins flip,
//     the symmetric difference of the pin lists;
//   - every gate adds its own output stem fault s-a-¬v.
type DeductiveSim struct {
	c       *logic.Circuit
	faults  []Fault
	index   map[Fault]int
	words   int
	lists   [][]uint64 // per net
	vals    []bool
	inputs  []int // view inputs, driven by the pattern
	others  []int // source elements outside the view, held at 0
	outputs []int // view outputs, where detection is observed
	// scratch
	acc, tmp []uint64
	pinVals  []bool
}

// NewDeductiveSim prepares a simulator for the fault list under the
// primary view (patterns over c.PIs, detection at c.POs).
func NewDeductiveSim(c *logic.Circuit, faults []Fault) *DeductiveSim {
	return NewDeductiveSimView(c, c.PIs, c.POs, faults)
}

// NewDeductiveSimView prepares a simulator with explicit controllable
// and observable nets, following the same view conventions as
// ParallelSim: every input must be a source element, and source
// elements outside the view are held at 0.
func NewDeductiveSimView(c *logic.Circuit, inputs, outputs []int, faults []Fault) *DeductiveSim {
	ds := &DeductiveSim{
		c:       c,
		faults:  faults,
		index:   make(map[Fault]int, len(faults)),
		words:   (len(faults) + 63) / 64,
		inputs:  append([]int(nil), inputs...),
		outputs: append([]int(nil), outputs...),
	}
	for i, f := range faults {
		ds.index[f] = i
	}
	driven := make(map[int]bool, len(inputs))
	for _, in := range inputs {
		if c.Gates[in].Type.IsCombinational() {
			panic("fault: view input " + c.NameOf(in) + " is not a source element")
		}
		driven[in] = true
	}
	for _, id := range c.PIs {
		if !driven[id] {
			ds.others = append(ds.others, id)
		}
	}
	for _, id := range c.DFFs {
		if !driven[id] {
			ds.others = append(ds.others, id)
		}
	}
	ds.lists = make([][]uint64, c.NumNets())
	for i := range ds.lists {
		ds.lists[i] = make([]uint64, ds.words)
	}
	ds.vals = make([]bool, c.NumNets())
	ds.acc = make([]uint64, ds.words)
	ds.tmp = make([]uint64, ds.words)
	ds.pinVals = make([]bool, c.MaxFanin())
	return ds
}

func (ds *DeductiveSim) setBit(dst []uint64, f Fault) {
	if i, ok := ds.index[f]; ok {
		dst[i/64] |= 1 << uint(i%64)
	}
}

func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

func copyWords(dst, src []uint64) { copy(dst, src) }

func orWords(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func andWords(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

func andNotWords(dst, src []uint64) {
	for i := range dst {
		dst[i] &^= src[i]
	}
}

func xorWords(dst, src []uint64) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Pattern runs one deductive pass, returning the bitset of faults
// detected at the view outputs (valid until the next call).
func (ds *DeductiveSim) Pattern(pi []bool) []uint64 {
	c := ds.c
	for i, id := range ds.inputs {
		ds.vals[id] = pi[i]
		clearWords(ds.lists[id])
		ds.setBit(ds.lists[id], Fault{id, Stem, logic.FromBool(!pi[i])})
	}
	for _, id := range ds.others {
		ds.vals[id] = false // held at the reset state
		clearWords(ds.lists[id])
		ds.setBit(ds.lists[id], Fault{id, Stem, logic.One})
	}
	scratch := ds.pinVals
	pinList := ds.tmp
	for _, id := range c.Order {
		g := &c.Gates[id]
		out := ds.lists[id]
		clearWords(out)
		inVals := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			inVals[i] = ds.vals[src]
		}
		v := g.Type.EvalBool(inVals)
		ds.vals[id] = v

		cv, hasCtl := g.Type.ControllingValue()
		ctlBool := cv == logic.One
		switch {
		case len(g.Fanin) == 0:
			// constants: only their own stem fault flips them
		case g.Type == logic.Xor || g.Type == logic.Xnor:
			for p, src := range g.Fanin {
				ds.effectivePin(pinList, id, p, src)
				xorWords(out, pinList)
			}
		case !hasCtl:
			// BUF/NOT behave as union of the single pin.
			for p, src := range g.Fanin {
				ds.effectivePin(pinList, id, p, src)
				orWords(out, pinList)
			}
		default:
			// AND/NAND/OR/NOR.
			first := true
			anyCtl := false
			for p, src := range g.Fanin {
				if inVals[p] != ctlBool {
					continue
				}
				anyCtl = true
				ds.effectivePin(pinList, id, p, src)
				if first {
					copyWords(out, pinList)
					first = false
				} else {
					andWords(out, pinList)
				}
			}
			if !anyCtl {
				for p, src := range g.Fanin {
					ds.effectivePin(pinList, id, p, src)
					orWords(out, pinList)
				}
			} else {
				for p, src := range g.Fanin {
					if inVals[p] == ctlBool {
						continue
					}
					ds.effectivePin(pinList, id, p, src)
					andNotWords(out, pinList)
				}
			}
		}
		// The gate's own output stem fault.
		ds.setBit(out, Fault{id, Stem, logic.FromBool(!v)})
	}
	clearWords(ds.acc)
	for _, po := range ds.outputs {
		orWords(ds.acc, ds.lists[po])
	}
	return ds.acc
}

// effectivePin fills dst with the source net's list plus this pin's
// branch fault.
func (ds *DeductiveSim) effectivePin(dst []uint64, gate, pin, src int) {
	copyWords(dst, ds.lists[src])
	ds.setBit(dst, Fault{gate, pin, logic.FromBool(!ds.vals[src])})
}

// runDeductive is the engine's deductive backend: one deductive pass
// per pattern (no dropping — every pattern is fully processed, since a
// pass carries all fault lists at once), with cancellation checked
// between patterns.
func runDeductive(ctx context.Context, c *logic.Circuit, inputs, outputs []int,
	faults []Fault, patterns [][]bool, reg *telemetry.Registry) (*Result, error) {
	defer reg.Timer("fault.sim.deductive").Time()()
	ds := NewDeductiveSimView(c, inputs, outputs, faults)
	res := newResult(faults, len(patterns))
	for pi, p := range patterns {
		if err := ctx.Err(); err != nil {
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
		reg.Counter("fault.deductive.patterns").Inc()
		// One levelized pass per pattern carries every fault list at once.
		reg.Counter("fault.sim.events").Add(int64(len(c.Order)))
		det := ds.Pattern(p)
		for w, word := range det {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				fi := w*64 + b
				if fi < len(faults) && !res.Detected[fi] {
					res.Detected[fi] = true
					res.DetectedBy[fi] = pi
					res.NumCaught++
				}
			}
		}
	}
	reg.Counter("fault.sim.patterns").Add(int64(len(patterns)))
	reg.Counter("fault.sim.detected").Add(int64(res.NumCaught))
	return res, nil
}
