// Fuzz targets live in the external test package so they can use
// fuzzdiff, which imports fault.
package fault_test

import (
	"context"
	"testing"

	"dft/internal/fault"
	"dft/internal/fuzzdiff"
)

// FuzzBackendEquivalence requires every fault-simulation configuration
// (backend × workers × drop × kernel) to report identical detection
// outcomes on a seed-generated circuit's collapsed fault list.
//
// Run: go test -fuzz=FuzzBackendEquivalence -fuzztime=10s ./internal/fault
func FuzzBackendEquivalence(f *testing.F) {
	// 116 generates a 5-DFF sequential netlist and 142 a large
	// tie-heavy combinational one — the shapes that stress the
	// fault-parallel grouping and cpt observability chain cells.
	for _, seed := range []int64{1, 2, 5, 11, 42, -8, 116, 142} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := fuzzdiff.Generate(fuzzdiff.ShapeConfig(seed), seed)
		if ds := fuzzdiff.Lint(c); fuzzdiff.HasErrors(ds) {
			t.Fatalf("seed %d: generator emitted invalid netlist: %v", seed, ds)
		}
		faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
		pats := fuzzdiff.RandomPatterns(len(c.PIs), 32, seed^0x6A09E667)
		d, err := fuzzdiff.CheckBackends(context.Background(), c, faults, pats, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			t.Fatalf("backend divergence:\n%s", d.Repro())
		}
	})
}
