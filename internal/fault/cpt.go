package fault

import (
	"context"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Critical-path-tracing / observability-propagation backend. Per
// 64-pattern block it runs the good machine once (through the pooled
// PPSFP simulator's compiled-kernel load), then computes an
// observability word obs[n] for every net — bit p set when flipping
// net n's value under pattern p changes some view output — walking the
// netlist once in reverse topological order:
//
//   - a view output observes itself on every pattern;
//   - a net read by exactly one combinational pin is observed through
//     it by the chain rule, obs = sens(reader, pin) & obs[reader] —
//     exact on fanout-free regions;
//   - a reconvergent stem (multiple reader pins) falls back to
//     explicit simulation: its complement is event-propagated through
//     the fanout cone (FlipMask) and the detection word is exact by
//     construction.
//
// Detection is then O(1) per fault per block: activation & observation.
// A stuck-at fault behaves as a complement on exactly the patterns
// that activate it, and word operations are lane-independent, so
//
//   det(stem s-a-v @ n)    = (good[n] ^ v…v) & obs[n]
//   det(branch s-a-v @ g.p) = (good[src] ^ v…v) & sens(g,p) & obs[g]
//
// are exact everywhere, not only on fanout-free regions. The engine
// shards the backend over pattern blocks with worker-local detection
// arrays min-merged at the end, like SPMF.

// cptKind classifies a net's combinational fanout for the
// observability recursion.
const (
	cptNone   uint8 = iota // no combinational reader: obs = 0 (or self-observation)
	cptSingle              // exactly one reader pin: chain rule
	cptMulti               // reconvergent stem: explicit complement simulation
)

// cptTopo is the per-circuit fanout classification, shared read-only
// by every worker.
type cptTopo struct {
	kind   []uint8
	reader []int32
	pin    []int32
}

func buildCPTTopo(c *logic.Circuit) *cptTopo {
	n := c.NumNets()
	t := &cptTopo{
		kind:   make([]uint8, n),
		reader: make([]int32, n),
		pin:    make([]int32, n),
	}
	for net := 0; net < n; net++ {
		pins := 0
		reader, pin := -1, -1
		for _, r := range c.Fanout[net] {
			if !c.Gates[r].Type.IsCombinational() {
				continue // DFF capture edges are sequential, invisible to one combinational cycle
			}
			pins++
			if pins == 1 {
				reader = r
				for p, f := range c.Gates[r].Fanin {
					if f == net {
						pin = p
						break
					}
				}
			}
		}
		switch {
		case pins == 0:
			t.kind[net] = cptNone
		case pins == 1:
			t.kind[net] = cptSingle
			t.reader[net] = int32(reader)
			t.pin[net] = int32(pin)
		default:
			t.kind[net] = cptMulti
		}
	}
	return t
}

// cptSim is one worker's CPT state: the pooled PPSFP simulator (good
// words, overlay, event queue for the explicit fallback) plus the
// per-block observability words.
type cptSim struct {
	ps   *ParallelSim
	topo *cptTopo
	obs  []uint64

	nFlips int64 // explicit complement simulations (reconvergent stems)
	nObs   int64 // observability words computed by chain rule / self
}

func newCPTSim(ps *ParallelSim, topo *cptTopo) *cptSim {
	return &cptSim{ps: ps, topo: topo, obs: make([]uint64, ps.c.NumNets())}
}

// sens returns the word of patterns under which gate r's output
// follows (possibly inverted) its pin-th operand, given the loaded
// good machine: AND-types need the other pins at 1, OR-types at 0,
// XOR-types and single-input gates always propagate. Pins are
// independent, so a net tied to two pins of r sensitizes each pin
// against the other's good value — matching the per-pin injection
// semantics of the serial and PPSFP backends.
func (cs *cptSim) sens(r, pin int) uint64 {
	g := &cs.ps.c.Gates[r]
	switch g.Type {
	case logic.And, logic.Nand:
		s := ^uint64(0)
		for i, src := range g.Fanin {
			if i != pin {
				s &= cs.ps.good[src]
			}
		}
		return s
	case logic.Or, logic.Nor:
		s := ^uint64(0)
		for i, src := range g.Fanin {
			if i != pin {
				s &= ^cs.ps.good[src]
			}
		}
		return s
	default: // Buf, Not, Xor, Xnor: always sensitized
		return ^uint64(0)
	}
}

// computeObs fills obs for every net of the loaded block. blockMask
// caps detection to the block's live patterns; every obs word is a
// subset of it, so fault grading needs no further masking.
func (cs *cptSim) computeObs(blockMask uint64) {
	c := cs.ps.c
	order := c.Order
	for i := len(order) - 1; i >= 0; i-- {
		cs.obsOf(order[i], blockMask)
	}
	for _, pi := range c.PIs {
		cs.obsOf(pi, blockMask)
	}
	for _, d := range c.DFFs {
		cs.obsOf(d, blockMask)
	}
}

func (cs *cptSim) obsOf(n int, blockMask uint64) {
	ps := cs.ps
	if ps.isObs[n] {
		cs.obs[n] = blockMask
		cs.nObs++
		return
	}
	switch cs.topo.kind[n] {
	case cptNone:
		cs.obs[n] = 0
		cs.nObs++
	case cptSingle:
		r := int(cs.topo.reader[n])
		cs.obs[n] = cs.obs[r] & cs.sens(r, int(cs.topo.pin[n]))
		cs.nObs++
	default:
		cs.obs[n] = ps.FlipMask(n) & blockMask
		cs.nFlips++
	}
}

// faultMask grades one fault against the loaded block in O(fanin):
// activation AND observation. Faults on source elements (input stems,
// DFF stems, and DFF D-pin faults, which the element passes through)
// pin the source net, mirroring the serial backend's conventions.
func (cs *cptSim) faultMask(f Fault) uint64 {
	ps := cs.ps
	stuck := uint64(0)
	if f.SA == logic.One {
		stuck = ^uint64(0)
	}
	g := &ps.c.Gates[f.Gate]
	if f.Pin == Stem || !g.Type.IsCombinational() {
		return (ps.good[f.Gate] ^ stuck) & cs.obs[f.Gate]
	}
	src := g.Fanin[f.Pin]
	return (ps.good[src] ^ stuck) & cs.sens(f.Gate, f.Pin) & cs.obs[f.Gate]
}

// FlipMask event-propagates the complement of net n's good value
// through its combinational fanout cone and returns the patterns on
// which the flip reaches a view output — the exact observability of n
// for the loaded block. It shares FaultMask's overlay machinery and
// leaves the same transient state (cleared by the next stamp bump).
func (ps *ParallelSim) FlipMask(n int) uint64 {
	ps.cur++
	ps.nMasks++
	c := ps.c

	var detected uint64
	push := func(net int, word uint64) {
		if word == ps.value(net) {
			return
		}
		ps.val[net] = word
		ps.stamp[net] = ps.cur
		if ps.isObs[net] {
			detected |= word ^ ps.good[net]
		}
		for _, reader := range c.Fanout[net] {
			if !c.Gates[reader].Type.IsCombinational() {
				continue
			}
			if ps.queued[reader] != ps.cur {
				ps.queued[reader] = ps.cur
				lv := c.Level[reader]
				ps.byLevel[lv] = append(ps.byLevel[lv], reader)
			}
		}
	}

	push(n, ^ps.good[n])
	for lv := c.Level[n]; lv < len(ps.byLevel); lv++ {
		bucket := ps.byLevel[lv]
		ps.byLevel[lv] = ps.byLevel[lv][:0]
		for _, id := range bucket {
			g := &c.Gates[id]
			in := ps.scratch[:len(g.Fanin)]
			for i, src := range g.Fanin {
				in[i] = ps.value(src)
			}
			w := g.Type.EvalWord(in)
			ps.nEvals++
			if id == n {
				// The flipped net holds its complement regardless of its
				// own fanins (it models an arbitrary value change).
				w = ^ps.good[n]
			}
			push(id, w)
		}
	}
	return detected
}

// runCPT is the engine's critical-path-tracing path: workers claim
// ascending 64-pattern blocks through an atomic cursor, compute the
// block's observability words once, and grade every fault in O(1),
// recording first detections locally for the final min-merge.
func (e *Engine) runCPT(ctx context.Context, faults []Fault, pats *PackedPatterns) (*Result, error) {
	reg := e.reg
	nPats := pats.NumPatterns()
	nBlocks := pats.NumBlocks()
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "fault.sim.cpt")
	span.SetAttr("faults", strconv.Itoa(len(faults)))
	span.SetAttr("patterns", strconv.Itoa(nPats))
	defer span.End()
	res := newResult(faults, nPats)
	if len(faults) == 0 || nPats == 0 {
		return res, nil
	}
	var prog *telemetry.Progress
	if !e.opts.NoProgress {
		prog = reg.Progress("fault.sim.progress")
		prog.AddTotal(int64(nPats))
	}
	w := e.workers
	if w > nBlocks {
		w = nBlocks
	}
	span.SetAttr("workers", strconv.Itoa(w))
	drop := e.drop()

	flush := func(cs *cptSim) {
		masks, evals := cs.ps.TakeCounts()
		reg.Counter("fault.sim.faultmasks").Add(masks)
		reg.Counter("fault.sim.events").Add(evals)
		reg.Counter("fault.cpt.flips").Add(cs.nFlips)
		reg.Counter("fault.cpt.chain_obs").Add(cs.nObs)
		cs.nFlips, cs.nObs = 0, 0
	}

	if w <= 1 {
		cs := e.cptSim(0)
		blocks, err := cptLoop(ctx, cs, faults, pats, 0, nBlocks, drop, res.Detected, res.DetectedBy, prog)
		reg.Counter("fault.sim.blocks").Add(blocks)
		flush(cs)
		if err != nil {
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
		for _, d := range res.Detected {
			if d {
				res.NumCaught++
			}
		}
		reg.Counter("fault.sim.patterns").Add(int64(nPats))
		reg.Counter("fault.sim.detected").Add(int64(res.NumCaught))
		return res, nil
	}

	reg.Gauge("fault.sim.workers").Set(int64(w))
	reg.Counter("fault.engine.runs").Inc()
	e.cptTopo() // build the shared classification before workers scatter
	var cursor, shards, blocks atomic.Int64
	errs := make([]error, w)
	locals := make([][]int, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			cs := e.cptSim(wi)
			det := make([]bool, len(faults))
			detBy := make([]int, len(faults))
			for i := range detBy {
				detBy[i] = -1
			}
			locals[wi] = detBy
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= nBlocks {
					break
				}
				if err := ctx.Err(); err != nil {
					errs[wi] = err
					break
				}
				shards.Add(1)
				nb, err := cptLoop(ctx, cs, faults, pats, bi, bi+1, drop, det, detBy, prog)
				blocks.Add(nb)
				if err != nil {
					errs[wi] = err
					break
				}
			}
			flush(cs)
		}(wi)
	}
	wg.Wait()
	reg.Counter("fault.engine.shards").Add(shards.Load())
	reg.Counter("fault.sim.blocks").Add(blocks.Load())
	for _, err := range errs {
		if err != nil {
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
	}
	mergeDetections(res, locals)
	reg.Counter("fault.sim.patterns").Add(int64(nPats))
	reg.Counter("fault.sim.detected").Add(int64(res.NumCaught))
	return res, nil
}

// cptLoop grades blocks [lo, hi) on cs. First detections (within the
// caller's block view) land in detected/detectedBy with absolute
// pattern indices; with drop, faults already recorded are skipped.
// Cancellation is checked between blocks.
func cptLoop(ctx context.Context, cs *cptSim, faults []Fault, pats *PackedPatterns, lo, hi int, drop bool,
	detected []bool, detectedBy []int, prog *telemetry.Progress) (blocks int64, err error) {
	ps := cs.ps
	for bi := lo; bi < hi; bi++ {
		if err := ctx.Err(); err != nil {
			return blocks, err
		}
		words, kb := pats.Block(bi)
		k := ps.LoadPackedBlock(words, kb)
		blocks++
		mask := ^uint64(0)
		if k < 64 {
			mask = 1<<uint(k) - 1
		}
		cs.computeObs(mask)
		base := bi * 64
		for fi := range faults {
			if detectedBy[fi] >= 0 {
				if drop {
					continue
				}
				// No-drop mode still grades for the work accounting, but
				// the first detection stands.
				cs.faultMask(faults[fi])
				continue
			}
			det := cs.faultMask(faults[fi])
			if det == 0 {
				continue
			}
			detected[fi] = true
			detectedBy[fi] = base + bits.TrailingZeros64(det)
		}
		if prog != nil {
			prog.Add(int64(k))
		}
	}
	return blocks, nil
}
