package fault

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

func enginePatterns(width, n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		p := make([]bool, width)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	return pats
}

func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.NumCaught != want.NumCaught {
		t.Fatalf("%s: caught %d, want %d", label, got.NumCaught, want.NumCaught)
	}
	for i := range want.Faults {
		if got.Detected[i] != want.Detected[i] || got.DetectedBy[i] != want.DetectedBy[i] {
			t.Fatalf("%s fault %d: (%v,%d), want (%v,%d)", label, i,
				got.Detected[i], got.DetectedBy[i], want.Detected[i], want.DetectedBy[i])
		}
	}
}

// The acceptance criterion: any worker count produces byte-identical
// results to the single-threaded path, dropping or not.
func TestEngineWorkerCountInvariance(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 200, 11)
	for _, drop := range []DropMode{DropOn, DropOff} {
		base, err := Simulate(context.Background(), c, faults, pats,
			Options{Backend: BackendParallel, Workers: 1, Drop: drop})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 4, 8, 16} {
			got, err := Simulate(context.Background(), c, faults, pats,
				Options{Backend: BackendParallel, Workers: w, Drop: drop})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("workers=%d drop=%v", w, drop), got, base)
		}
	}
}

// All three backends agree on outcomes for a combinational circuit.
func TestEngineBackendAgreement(t *testing.T) {
	c := circuits.RippleAdder(6)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 100, 5)
	base, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []Backend{BackendSerial, BackendDeductive, BackendFaultParallel, BackendCPT, Auto} {
		got, err := Simulate(context.Background(), c, faults, pats, Options{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, be.String(), got, base)
	}
}

// The serial backend must mirror the PPSFP view conventions on scan
// views, including faults on the flip-flops themselves.
func TestEngineSerialScanView(t *testing.T) {
	c := circuits.Counter(4)
	faults := CollapseEquiv(c, Universe(c)).Reps
	inputs := append(append([]int{}, c.PIs...), c.DFFs...)
	outputs := append([]int{}, c.POs...)
	for _, d := range c.DFFs {
		outputs = append(outputs, c.Gates[d].Fanin[0])
	}
	view := View{Inputs: inputs, Outputs: outputs}
	pats := enginePatterns(len(inputs), 64, 9)
	base, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1, View: view})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendSerial, View: view})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "serial scan view", got, base)
}

func TestEngineCancellation(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	faults := Universe(c)
	pats := enginePatterns(len(c.PIs), 256, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, be := range []Backend{BackendParallel, BackendSerial, BackendDeductive, BackendFaultParallel, BackendCPT} {
		res, err := Simulate(ctx, c, faults, pats, Options{Backend: be, Workers: 4})
		if err == nil || res != nil {
			t.Fatalf("%s: want cancellation error, got res=%v err=%v", be, res, err)
		}
	}
}

// A session must catch the same faults as a one-shot run over the same
// stream, block by block, at every worker count.
func TestEngineSessionMatchesRun(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 192, 17)
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		eng := NewEngine(c, Options{Workers: w, Metrics: telemetry.NewRegistry()})
		s := eng.NewSession(faults)
		detected := make([]bool, len(faults))
		var useful uint64
		for base := 0; base < len(pats); base += 64 {
			useful |= s.ApplyBlock(pats[base:base+64], detected)
		}
		if s.Caught() != want.NumCaught {
			t.Fatalf("workers=%d: session caught %d, want %d", w, s.Caught(), want.NumCaught)
		}
		if s.Remaining() != len(faults)-want.NumCaught {
			t.Fatalf("workers=%d: remaining %d", w, s.Remaining())
		}
		for i := range faults {
			if detected[i] != want.Detected[i] {
				t.Fatalf("workers=%d fault %d: detected %v, want %v", w, i, detected[i], want.Detected[i])
			}
		}
		if useful == 0 {
			t.Fatal("no useful patterns recorded")
		}
	}
}

// Engines are reusable: a second Run on the same engine (pooled
// simulators, dirty overlay state) must match a fresh one.
func TestEngineReuse(t *testing.T) {
	c := circuits.RippleAdder(5)
	faults := CollapseEquiv(c, Universe(c)).Reps
	eng := NewEngine(c, Options{Backend: BackendParallel, Workers: 4, Metrics: telemetry.NewRegistry()})
	pats1 := enginePatterns(len(c.PIs), 96, 1)
	pats2 := enginePatterns(len(c.PIs), 96, 2)
	if _, err := eng.Run(context.Background(), faults, pats1); err != nil {
		t.Fatal(err)
	}
	again, err := eng.Run(context.Background(), faults, pats2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Simulate(context.Background(), c, faults, pats2,
		Options{Backend: BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "reused engine", again, fresh)
}

func TestEngineEmptyInputs(t *testing.T) {
	c := circuits.C17()
	faults := Universe(c)
	if res, err := Simulate(context.Background(), c, nil, enginePatterns(len(c.PIs), 8, 1),
		Options{Backend: BackendParallel, Workers: 4}); err != nil || res.NumCaught != 0 {
		t.Fatalf("empty faults: res=%+v err=%v", res, err)
	}
	if res, err := Simulate(context.Background(), c, faults, nil,
		Options{Backend: BackendParallel, Workers: 4}); err != nil || res.NumCaught != 0 {
		t.Fatalf("empty patterns: res=%+v err=%v", res, err)
	}
}

func TestEngineShardTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := circuits.ArrayMultiplier(5)
	faults := Universe(c) // uncollapsed: big enough to shard
	pats := enginePatterns(len(c.PIs), 128, 3)
	if _, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 4, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["fault.engine.runs"] != 1 {
		t.Fatalf("fault.engine.runs = %d", snap.Counters["fault.engine.runs"])
	}
	if snap.Counters["fault.engine.shards"] < 2 {
		t.Fatalf("fault.engine.shards = %d, want sharded run", snap.Counters["fault.engine.shards"])
	}
	if snap.Counters["fault.sim.events"] == 0 || snap.Counters["fault.sim.faultmasks"] == 0 {
		t.Fatal("per-worker counters not flushed")
	}
	if snap.Gauges["fault.sim.workers"] != 4 {
		t.Fatalf("fault.sim.workers = %d", snap.Gauges["fault.sim.workers"])
	}
}

func TestParseBackendRoundTrip(t *testing.T) {
	for _, be := range []Backend{Auto, BackendParallel, BackendDeductive, BackendSerial, BackendFaultParallel, BackendCPT} {
		got, err := ParseBackend(be.String())
		if err != nil || got != be {
			t.Fatalf("round trip %v: got %v err %v", be, got, err)
		}
	}
	if _, err := ParseBackend("nope"); err == nil {
		t.Fatal("want error for unknown backend")
	}
}

// Auto must never hand a sequential circuit to the deductive backend
// and must agree with parallel outcomes regardless of what it picks.
func TestEngineAutoHeuristic(t *testing.T) {
	if be := pickBackend(circuits.C17(), 4, 4, true); be != BackendSerial {
		t.Fatalf("tiny job picked %v", be)
	}
	comb := circuits.RippleAdder(8)
	// Large no-drop gradings go to the observability backend; the
	// deductive simulator keeps only the small combinational window.
	if be := pickBackend(comb, 4096, 64, false); be != BackendCPT {
		t.Fatalf("no-drop fault-heavy job picked %v", be)
	}
	if be := pickBackend(comb, 1024, 32, false); be != BackendDeductive {
		t.Fatalf("small no-drop combinational job picked %v", be)
	}
	seq := circuits.Counter(8)
	if be := pickBackend(seq, 1024, 32, false); be == BackendDeductive {
		t.Fatal("deductive picked for a sequential circuit")
	}
	// Pattern-starved fault-heavy gradings go fault-parallel.
	if be := pickBackend(comb, 1024, 8, true); be != BackendFaultParallel {
		t.Fatalf("pattern-starved job picked %v", be)
	}
	if be := pickBackend(comb, 4096, 4096, true); be != BackendParallel {
		t.Fatalf("dropping bulk job picked %v", be)
	}
}

// Every backend must agree with every other on the same grading —
// the full algorithm axis of the Options surface.
func TestAllBackendsAgree(t *testing.T) {
	c := circuits.RippleAdder(4)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 64, 21)
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []Backend{BackendSerial, BackendDeductive, BackendFaultParallel, BackendCPT, Auto} {
		for _, drop := range []DropMode{DropOn, DropOff} {
			got, err := Simulate(context.Background(), c, faults, pats,
				Options{Backend: be, Drop: drop})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, be.String(), got, want)
		}
	}
}

// Stem faults on a view input held at a constant must still be modeled
// identically across backends (serial holds unlisted sources at 0).
func TestEnginePartialViewAgreement(t *testing.T) {
	c := circuits.RippleAdder(4)
	faults := CollapseEquiv(c, Universe(c)).Reps
	view := View{Inputs: c.PIs[:len(c.PIs)-2], Outputs: c.POs}
	pats := enginePatterns(len(view.Inputs), 64, 13)
	base, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1, View: view})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Backend: BackendParallel, Workers: 4, View: view},
		{Backend: BackendSerial, View: view},
		{Backend: BackendDeductive, View: view},
	} {
		got, err := Simulate(context.Background(), c, faults, pats, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, opts.Backend.String(), got, base)
	}
}

func TestEngineDFFBranchFaultSerial(t *testing.T) {
	// A DFF D-pin fault is equivalent to the stem fault on the same
	// element (CollapseEquiv merges them), and the PPSFP simulator never
	// sees D-pin faults for that reason. The serial backend accepts
	// them; it must honor the equivalence.
	c := circuits.Counter(3)
	var stems []Fault
	for _, f := range Universe(c) {
		if c.Gates[f.Gate].Type == logic.DFF && f.Pin == Stem {
			stems = append(stems, f)
		}
	}
	if len(stems) == 0 {
		t.Skip("no DFF stem faults in universe")
	}
	branches := make([]Fault, len(stems))
	for i, f := range stems {
		branches[i] = Fault{Gate: f.Gate, Pin: 0, SA: f.SA}
	}
	inputs := append(append([]int{}, c.PIs...), c.DFFs...)
	outputs := append([]int{}, c.POs...)
	for _, d := range c.DFFs {
		outputs = append(outputs, c.Gates[d].Fanin[0])
	}
	view := View{Inputs: inputs, Outputs: outputs}
	pats := enginePatterns(len(inputs), 32, 4)
	base, err := Simulate(context.Background(), c, stems, pats,
		Options{Backend: BackendParallel, Workers: 1, View: view})
	if err != nil {
		t.Fatal(err)
	}
	onStems, err := Simulate(context.Background(), c, stems, pats,
		Options{Backend: BackendSerial, View: view})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "serial DFF stems", onStems, base)
	onBranches, err := Simulate(context.Background(), c, branches, pats,
		Options{Backend: BackendSerial, View: view})
	if err != nil {
		t.Fatal(err)
	}
	for i := range stems {
		if onBranches.DetectedBy[i] != onStems.DetectedBy[i] {
			t.Fatalf("fault %v: branch DetectedBy %d, stem %d",
				stems[i], onBranches.DetectedBy[i], onStems.DetectedBy[i])
		}
	}
}

// countdownCtx reports Canceled after a fixed number of Err() polls,
// landing the cancellation deterministically in the middle of the
// parallel backend's shard processing rather than before it starts.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestEngineMidShardCancellation cancels while workers hold chunks and
// checks the contract: a nil Result (so no partial Detected/DetectedBy
// writes can reach the caller), a Canceled error, the cancelled
// counter fired, and the engine's pooled simulators left in a state
// where the next run is still byte-identical to a fresh baseline.
func TestEngineMidShardCancellation(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 128, 3)
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendSerial, Workers: 1, Drop: DropOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, allow := range []int64{1, 3, 7} {
		reg := telemetry.NewRegistry()
		eng := NewEngine(c, Options{Backend: BackendParallel, Workers: 4, Drop: DropOff, Metrics: reg})
		ctx := &countdownCtx{Context: context.Background()}
		ctx.remaining.Store(allow)
		res, err := eng.Run(ctx, faults, pats)
		if err == nil || res != nil {
			t.Fatalf("allow=%d: want mid-shard cancellation, got res=%v err=%v", allow, res, err)
		}
		if n := reg.Counter("fault.engine.cancelled").Value(); n < 1 {
			t.Fatalf("allow=%d: cancelled counter = %d, want >= 1", allow, n)
		}
		got, err := eng.Run(context.Background(), faults, pats)
		if err != nil {
			t.Fatalf("allow=%d: rerun after cancellation: %v", allow, err)
		}
		sameResult(t, fmt.Sprintf("rerun after cancel allow=%d", allow), got, want)
	}
}
