package fault

import (
	"context"
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// DetailResult is the per-pattern grading record behind fault
// dictionaries: one packed row of detect bits per fault, bit p%64 of
// word p/64 set when pattern p detects the fault at the view outputs.
// Where Result keeps only the first detection, a DetailResult keeps
// every one — the pass/fail column a tester compares an observed
// failing signature against. Rows are byte-identical for every
// backend and worker count: each backend computes exact per-pattern
// detect words and the schedulers only ever write disjoint row words.
type DetailResult struct {
	Faults  []Fault
	NumPats int
	// Detect[fi] is fault fi's packed row, detailWords(NumPats) long.
	Detect [][]uint64
}

// detailWords is the packed row length for a pattern count.
func detailWords(nPats int) int { return (nPats + 63) / 64 }

// Row returns fault fi's packed detect row (shared, not a copy).
func (dr *DetailResult) Row(fi int) []uint64 { return dr.Detect[fi] }

// Detects reports whether pattern p detects fault fi.
func (dr *DetailResult) Detects(fi, p int) bool {
	return dr.Detect[fi][p/64]>>(uint(p)%64)&1 == 1
}

// FirstDetect returns the lowest-indexed detecting pattern for fault
// fi, or -1 when no pattern detects it.
func (dr *DetailResult) FirstDetect(fi int) int {
	for w, word := range dr.Detect[fi] {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// Result folds the rows into the classic first-detection Result, the
// form the cross-oracle compares against an independent grade.
func (dr *DetailResult) Result() *Result {
	res := newResult(dr.Faults, dr.NumPats)
	for fi := range dr.Detect {
		if p := dr.FirstDetect(fi); p >= 0 {
			res.Detected[fi] = true
			res.DetectedBy[fi] = p
			res.NumCaught++
		}
	}
	return res
}

// SimulateDetail grades every fault against every pattern and returns
// the full per-pattern detect rows. Dropping never applies — a
// dictionary needs the whole column, not just the first hit — so the
// Options.Drop field is ignored. See Engine.RunDetail.
func SimulateDetail(ctx context.Context, c *logic.Circuit, faults []Fault, patterns [][]bool, opts Options) (*DetailResult, error) {
	e := NewEngine(c, opts)
	return e.RunDetail(ctx, faults, PackPatternSet(len(e.inputs), patterns))
}

// RunDetail is the engine's detail-grading path: exact per-pattern
// detect rows for every fault, honoring context cancellation between
// pattern blocks. Three scheduler shapes cover the packed backends —
// the PPSFP path shards the fault axis (each worker owns whole rows),
// while the CPT and SPMF paths shard the pattern-block axis (each
// worker owns one word column of every row) — so all writes are
// disjoint and the rows are byte-identical at every worker count.
// The serial and deductive backends have no packed per-pattern form;
// they fall back to the PPSFP path, which computes the same rows.
func (e *Engine) RunDetail(ctx context.Context, faults []Fault, pats *PackedPatterns) (*DetailResult, error) {
	if pats.NumInputs() != len(e.inputs) {
		panic(fmt.Sprintf("fault: packed patterns are %d wide for %d view inputs", pats.NumInputs(), len(e.inputs)))
	}
	reg := e.reg
	nPats := pats.NumPatterns()
	dr := &DetailResult{Faults: faults, NumPats: nPats, Detect: make([][]uint64, len(faults))}
	words := detailWords(nPats)
	backing := make([]uint64, words*len(faults))
	for fi := range dr.Detect {
		dr.Detect[fi] = backing[fi*words : (fi+1)*words : (fi+1)*words]
	}
	if len(faults) == 0 || nPats == 0 {
		return dr, nil
	}
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "fault.sim.detail")
	span.SetAttr("faults", strconv.Itoa(len(faults)))
	span.SetAttr("patterns", strconv.Itoa(nPats))
	defer span.End()
	var prog *telemetry.Progress
	if !e.opts.NoProgress {
		prog = reg.Progress("fault.sim.progress")
	}
	be := e.opts.Backend
	if be == Auto {
		// A detail grade is always a no-drop full grading — every fault
		// against every pattern — so Auto resolves through the same
		// heuristic as Run with dropping off. Large jobs land on CPT
		// (one observability pass per block, O(fanin) per fault), which
		// is what makes engine-backed dictionary builds fast.
		be = pickBackend(e.c, len(faults), nPats, false)
	}
	span.SetAttr("backend", be.String())
	var err error
	switch be {
	case BackendCPT:
		err = e.detailCPT(ctx, faults, pats, dr, prog, span)
	case BackendFaultParallel:
		err = e.detailSPMF(ctx, faults, pats, dr, prog, span)
	default:
		err = e.detailParallel(ctx, faults, pats, dr, prog, span)
	}
	if err != nil {
		reg.Counter("fault.engine.cancelled").Inc()
		return nil, err
	}
	reg.Counter("fault.sim.detail_runs").Inc()
	reg.Counter("fault.sim.patterns").Add(int64(nPats))
	return dr, nil
}

// detailParallel shards the fault axis in dynamic chunks (the PPSFP
// discipline of runParallel): each chunk owns its rows outright, and
// per block one FaultMask call yields a whole 64-pattern row word.
func (e *Engine) detailParallel(ctx context.Context, faults []Fault, pats *PackedPatterns, dr *DetailResult, prog *telemetry.Progress, span *telemetry.Span) error {
	reg := e.reg
	nb := pats.NumBlocks()
	if prog != nil {
		prog.AddTotal(int64(len(faults)))
	}
	loop := func(ps *ParallelSim, lo, hi int) error {
		for bi := 0; bi < nb; bi++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			words, kb := pats.Block(bi)
			k := ps.LoadPackedBlock(words, kb)
			mask := ^uint64(0)
			if k < 64 {
				mask = 1<<uint(k) - 1
			}
			for fi := lo; fi < hi; fi++ {
				if det := ps.FaultMask(faults[fi]) & mask; det != 0 {
					dr.Detect[fi][bi] = det
				}
			}
			reg.Counter("fault.sim.blocks").Inc()
		}
		return nil
	}
	w := e.workers
	if w > len(faults) {
		w = len(faults)
	}
	span.SetAttr("workers", strconv.Itoa(w))
	if w <= 1 {
		ps := e.sim(0)
		err := loop(ps, 0, len(faults))
		masks, evals := ps.TakeCounts()
		reg.Counter("fault.sim.faultmasks").Add(masks)
		reg.Counter("fault.sim.events").Add(evals)
		if err != nil {
			return err
		}
		if prog != nil {
			prog.Add(int64(len(faults)))
		}
		return nil
	}
	reg.Gauge("fault.sim.workers").Set(int64(w))
	reg.Counter("fault.engine.runs").Inc()
	chunk := chunkSize(len(faults), w)
	var cursor atomic.Int64
	errs := make([]error, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			ps := e.sim(wi)
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= len(faults) {
					break
				}
				hi := lo + chunk
				if hi > len(faults) {
					hi = len(faults)
				}
				if err := loop(ps, lo, hi); err != nil {
					errs[wi] = err
					break
				}
				if prog != nil {
					prog.Add(int64(hi - lo))
				}
			}
			masks, evals := ps.TakeCounts()
			reg.Counter("fault.sim.faultmasks").Add(masks)
			reg.Counter("fault.sim.events").Add(evals)
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// detailCPT shards the pattern-block axis: each block's observability
// words are computed once, every fault grades in O(fanin), and a
// worker owning block bi writes only word bi of every row.
func (e *Engine) detailCPT(ctx context.Context, faults []Fault, pats *PackedPatterns, dr *DetailResult, prog *telemetry.Progress, span *telemetry.Span) error {
	reg := e.reg
	nb := pats.NumBlocks()
	if prog != nil {
		prog.AddTotal(int64(nb))
	}
	e.cptTopo() // build the shared classification before workers scatter
	block := func(cs *cptSim, bi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		words, kb := pats.Block(bi)
		k := cs.ps.LoadPackedBlock(words, kb)
		mask := ^uint64(0)
		if k < 64 {
			mask = 1<<uint(k) - 1
		}
		cs.computeObs(mask)
		for fi := range faults {
			if det := cs.faultMask(faults[fi]); det != 0 {
				dr.Detect[fi][bi] = det
			}
		}
		reg.Counter("fault.sim.blocks").Inc()
		if prog != nil {
			prog.Inc()
		}
		return nil
	}
	flush := func(cs *cptSim) {
		masks, evals := cs.ps.TakeCounts()
		reg.Counter("fault.sim.faultmasks").Add(masks)
		reg.Counter("fault.sim.events").Add(evals)
		reg.Counter("fault.cpt.flips").Add(cs.nFlips)
		reg.Counter("fault.cpt.chain_obs").Add(cs.nObs)
		cs.nFlips, cs.nObs = 0, 0
	}
	w := e.workers
	if w > nb {
		w = nb
	}
	span.SetAttr("workers", strconv.Itoa(w))
	if w <= 1 {
		cs := e.cptSim(0)
		for bi := 0; bi < nb; bi++ {
			if err := block(cs, bi); err != nil {
				flush(cs)
				return err
			}
		}
		flush(cs)
		return nil
	}
	reg.Gauge("fault.sim.workers").Set(int64(w))
	reg.Counter("fault.engine.runs").Inc()
	var cursor atomic.Int64
	errs := make([]error, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			cs := e.cptSim(wi)
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= nb {
					break
				}
				if err := block(cs, bi); err != nil {
					errs[wi] = err
					break
				}
			}
			flush(cs)
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// detailSPMF shards the pattern-block axis over the fault-parallel
// backend: injection groups are built once and shared read-only, each
// worker claims whole 64-pattern blocks (so it owns word bi of every
// row — sub-block sharding would race on shared row words), and one
// gradeGroup pass yields 64 fault bits for one pattern.
func (e *Engine) detailSPMF(ctx context.Context, faults []Fault, pats *PackedPatterns, dr *DetailResult, prog *telemetry.Progress, span *telemetry.Span) error {
	reg := e.reg
	nb := pats.NumBlocks()
	nPats := pats.NumPatterns()
	if prog != nil {
		prog.AddTotal(int64(nb))
	}
	groups := buildSPMFGroups(e.c, faults, e.opts.lanes())
	reg.Counter("fault.spmf.groups").Add(int64(len(groups)))
	span.SetAttr("groups", strconv.Itoa(len(groups)))
	block := func(s *spmfSim, bi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		base := bi * 64
		end := base + 64
		if end > nPats {
			end = nPats
		}
		for p := base; p < end; p++ {
			s.loadGood(pats.At(p))
			bit := uint64(1) << uint(p-base)
			for gi := range groups {
				det := s.gradeGroup(&groups[gi])
				for det != 0 {
					j := bits.TrailingZeros64(det)
					det &= det - 1
					dr.Detect[groups[gi].base+j][bi] |= bit
				}
			}
		}
		reg.Counter("fault.sim.blocks").Inc()
		if prog != nil {
			prog.Inc()
		}
		return nil
	}
	flush := func(s *spmfSim) {
		reg.Counter("fault.spmf.word_passes").Add(s.nPasses)
		reg.Counter("fault.spmf.good_passes").Add(s.nGood)
		s.nPasses, s.nGood = 0, 0
	}
	w := e.workers
	if w > nb {
		w = nb
	}
	span.SetAttr("workers", strconv.Itoa(w))
	if w <= 1 {
		s := e.spmfSim(0)
		for bi := 0; bi < nb; bi++ {
			if err := block(s, bi); err != nil {
				flush(s)
				return err
			}
		}
		flush(s)
		return nil
	}
	reg.Gauge("fault.sim.workers").Set(int64(w))
	reg.Counter("fault.engine.runs").Inc()
	var cursor atomic.Int64
	errs := make([]error, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			s := e.spmfSim(wi)
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= nb {
					break
				}
				if err := block(s, bi); err != nil {
					errs[wi] = err
					break
				}
			}
			flush(s)
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
