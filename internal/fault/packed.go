package fault

import (
	"fmt"

	"dft/internal/sim"
)

// PackedPatterns is a pattern set stored in PPSFP form: one 64-pattern
// block per slice of words, one word per view input. Packing once and
// sharing the blocks across workers replaces the per-worker, per-chunk
// repacking the engine used to do, and exhaustive sets build directly
// in packed form without ever materializing 2^N scalar vectors.
type PackedPatterns struct {
	nInputs int
	n       int        // patterns appended so far
	blocks  [][]uint64 // each len nInputs; block b holds patterns [64b, 64b+64)
}

// NewPackedPatterns returns an empty set over nInputs view inputs.
func NewPackedPatterns(nInputs int) *PackedPatterns {
	return &PackedPatterns{nInputs: nInputs}
}

// NumInputs returns the pattern width (view inputs per pattern).
func (pp *PackedPatterns) NumInputs() int { return pp.nInputs }

// NumPatterns returns the number of patterns in the set.
func (pp *PackedPatterns) NumPatterns() int { return pp.n }

// NumBlocks returns the number of 64-pattern blocks.
func (pp *PackedPatterns) NumBlocks() int { return len(pp.blocks) }

// Block returns block b's words and its pattern count (64 except for a
// trailing partial block).
func (pp *PackedPatterns) Block(b int) (words []uint64, k int) {
	k = pp.n - b*64
	if k > 64 {
		k = 64
	}
	return pp.blocks[b], k
}

// grow ensures a block exists for pattern index i and returns it.
func (pp *PackedPatterns) grow(i int) []uint64 {
	for len(pp.blocks) <= i/64 {
		pp.blocks = append(pp.blocks, make([]uint64, pp.nInputs))
	}
	return pp.blocks[i/64]
}

// Append adds one pattern (len nInputs) to the set.
func (pp *PackedPatterns) Append(p []bool) {
	if len(p) != pp.nInputs {
		panic(fmt.Sprintf("fault: pattern has %d values for %d inputs", len(p), pp.nInputs))
	}
	w := pp.grow(pp.n)
	bit := uint64(1) << uint(pp.n%64)
	for i, b := range p {
		if b {
			w[i] |= bit
		}
	}
	pp.n++
}

// At unpacks pattern i into a fresh scalar vector.
func (pp *PackedPatterns) At(i int) []bool {
	if i < 0 || i >= pp.n {
		panic(fmt.Sprintf("fault: pattern %d out of range [0,%d)", i, pp.n))
	}
	w := pp.blocks[i/64]
	bit := uint(i % 64)
	p := make([]bool, pp.nInputs)
	for j := range p {
		p[j] = w[j]>>bit&1 == 1
	}
	return p
}

// Patterns materializes the whole set as scalar vectors, for the
// engine backends (serial, deductive) that still walk patterns one at
// a time.
func (pp *PackedPatterns) Patterns() [][]bool {
	out := make([][]bool, pp.n)
	for i := range out {
		out[i] = pp.At(i)
	}
	return out
}

// AppendBlock appends one pre-packed 64-pattern block (k patterns,
// len(words) == nInputs). The set must be 64-aligned — decoders
// rebuilding a packed set block-by-block are the intended caller.
func (pp *PackedPatterns) AppendBlock(words []uint64, k int) {
	if len(words) != pp.nInputs {
		panic(fmt.Sprintf("fault: block has %d words for %d inputs", len(words), pp.nInputs))
	}
	if pp.n%64 != 0 {
		panic(fmt.Sprintf("fault: AppendBlock on unaligned set (%d patterns)", pp.n))
	}
	if k < 0 || k > 64 {
		panic(fmt.Sprintf("fault: block pattern count %d out of range [0,64]", k))
	}
	pp.blocks = append(pp.blocks, append([]uint64(nil), words...))
	pp.n += k
}

// AppendEnum appends the full exhaustive enumeration over the free
// input positions — pattern x (for x in [0, 2^len(free))) assigns bit
// b of x to input free[b] — with the fixedOnes positions held at 1 and
// every other input at 0. The pattern order matches a scalar count
// from 0 to 2^n-1, and when the set is 64-aligned the blocks are
// synthesized directly from periodic bit masks without touching
// individual patterns.
func (pp *PackedPatterns) AppendEnum(free []int, fixedOnes []int) {
	total := uint64(1) << uint(len(free))
	if pp.n%64 == 0 {
		onesMask := func(k int) uint64 {
			if k >= 64 {
				return ^uint64(0)
			}
			return 1<<uint(k) - 1
		}
		for base := uint64(0); base < total; base += 64 {
			w := pp.grow(pp.n)
			k := sim.ExhaustiveBlock(w, free, base)
			m := onesMask(k)
			for _, pos := range fixedOnes {
				w[pos] |= m
			}
			pp.n += k
		}
		return
	}
	// Unaligned start: fall back to per-pattern appends so the global
	// pattern order stays identical to the scalar enumeration.
	p := make([]bool, pp.nInputs)
	for _, pos := range fixedOnes {
		p[pos] = true
	}
	for x := uint64(0); x < total; x++ {
		for b, pos := range free {
			p[pos] = x>>uint(b)&1 == 1
		}
		pp.Append(p)
	}
}

// PackPatternSet packs an existing scalar pattern set (each pattern
// nInputs wide) once for the whole run.
func PackPatternSet(nInputs int, patterns [][]bool) *PackedPatterns {
	pp := NewPackedPatterns(nInputs)
	for bi := 0; bi < len(patterns); bi += 64 {
		end := bi + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		w := pp.grow(bi)
		pp.n += sim.PackPatternsInto(patterns[bi:end], w)
	}
	return pp
}

// ExhaustivePatterns builds the complete 2^nInputs enumeration in
// packed form — 64× smaller than the scalar equivalent and built
// block-at-a-time from periodic masks.
func ExhaustivePatterns(nInputs int) *PackedPatterns {
	pp := NewPackedPatterns(nInputs)
	free := make([]int, nInputs)
	for i := range free {
		free[i] = i
	}
	pp.AppendEnum(free, nil)
	return pp
}
