package fault

import (
	"context"
	"math/bits"

	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// Result accumulates combinational fault-simulation outcomes across
// pattern batches.
type Result struct {
	Faults     []Fault
	Detected   []bool
	DetectedBy []int // index of first detecting pattern, -1 if none
	NumCaught  int
	NumPats    int
}

// Coverage returns the single stuck-at fault coverage: detected faults
// divided by assumed faults — the paper's defining metric.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.NumCaught) / float64(len(r.Faults))
}

// Undetected returns the faults not yet detected.
func (r *Result) Undetected() []Fault {
	var out []Fault
	for i, f := range r.Faults {
		if !r.Detected[i] {
			out = append(out, f)
		}
	}
	return out
}

// ParallelSim is a 64-way parallel-pattern single-fault-propagation
// (PPSFP) fault simulator. Patterns are packed 64 to a word; each
// fault is injected once per block and its effects propagated through
// the fanout cone only.
//
// The simulator is view-aware: the controllable nets (pattern bit
// positions) and observable nets are configurable, so the same engine
// serves plain combinational circuits (PIs/POs) and scan designs
// (PIs+flip-flops / POs+flip-flop D inputs). Source elements not in
// the input list are held at 0, the toolkit's reset state.
type ParallelSim struct {
	c       *logic.Circuit
	prog    *sim.Program // compiled good-machine kernel; nil under KernelInterp
	inputs  []int
	good    sim.Words
	val     []uint64 // overlay of faulty values
	stamp   []int    // overlay validity: stamp[n] == cur
	queued  []int
	cur     int
	byLevel [][]int // worklist buckets indexed by level
	isObs   []bool
	scratch []uint64
	packBuf []uint64 // LoadBlock's packing buffer, one word per input
	liveBuf []int    // blockLoop's live list, reused across calls

	// Work counters, accumulated as plain ints (the simulator is owned
	// by one goroutine) and drained in batches via TakeCounts so hot
	// loops pay no atomics.
	nMasks int64 // FaultMask invocations
	nEvals int64 // gate (word) evaluations, good + faulty
}

// TakeCounts returns and resets the simulator's work counters: fault
// injections simulated and gate-level word evaluations performed.
// Drivers drain this into a telemetry registry once per block or run.
func (ps *ParallelSim) TakeCounts() (masks, evals int64) {
	masks, evals = ps.nMasks, ps.nEvals
	ps.nMasks, ps.nEvals = 0, 0
	return masks, evals
}

// NewParallelSim builds a simulator observing the primary view
// (patterns over c.PIs, detection at c.POs).
func NewParallelSim(c *logic.Circuit) *ParallelSim {
	return NewParallelSimView(c, c.PIs, c.POs)
}

// NewParallelSimView builds a simulator with explicit controllable and
// observable nets. Every input must be a source element (Input or DFF).
func NewParallelSimView(c *logic.Circuit, inputs, outputs []int) *ParallelSim {
	n := c.NumNets()
	ps := &ParallelSim{
		c:       c,
		prog:    sim.ActiveProgram(c),
		inputs:  append([]int(nil), inputs...),
		good:    make(sim.Words, n),
		val:     make([]uint64, n),
		stamp:   make([]int, n),
		queued:  make([]int, n),
		byLevel: make([][]int, c.Depth()+1),
		isObs:   make([]bool, n),
		scratch: make([]uint64, c.MaxFanin()),
		packBuf: make([]uint64, len(inputs)),
	}
	for _, in := range inputs {
		if c.Gates[in].Type.IsCombinational() {
			panic("fault: view input " + c.NameOf(in) + " is not a source element")
		}
	}
	for i := range ps.stamp {
		ps.stamp[i] = -1
		ps.queued[i] = -1
	}
	for _, o := range outputs {
		ps.isObs[o] = true
	}
	return ps
}

// LoadBlock packs up to 64 patterns (each one bit per view input) and
// computes the good-machine response. It returns the number of
// patterns loaded.
func (ps *ParallelSim) LoadBlock(patterns [][]bool) int {
	if len(patterns) > 64 {
		patterns = patterns[:64]
	}
	k := sim.PackPatternsInto(patterns, ps.packBuf)
	return ps.LoadPackedBlock(ps.packBuf, k)
}

// LoadPackedBlock loads an already-packed block (one word per view
// input, k patterns in the low bits) and computes the good-machine
// response through the active kernel. Words are masked to k bits, so a
// shared block may carry stale high bits. It returns k (capped at 64).
func (ps *ParallelSim) LoadPackedBlock(words []uint64, k int) int {
	if k > 64 {
		k = 64
	}
	c := ps.c
	// Source elements default to 0.
	for _, pi := range c.PIs {
		ps.good[pi] = 0
	}
	for _, d := range c.DFFs {
		ps.good[d] = 0
	}
	mask := ^uint64(0)
	if k < 64 {
		mask = 1<<uint(k) - 1
	}
	for i, in := range ps.inputs {
		ps.good[in] = words[i] & mask
	}
	if ps.prog != nil {
		ps.prog.Exec(ps.good)
	} else {
		for _, id := range c.Order {
			g := &c.Gates[id]
			in := ps.scratch[:len(g.Fanin)]
			for i, src := range g.Fanin {
				in[i] = ps.good[src]
			}
			ps.good[id] = g.Type.EvalWord(in)
		}
	}
	ps.nEvals += int64(len(c.Order))
	return k
}

// value returns the current (possibly faulty) word of a net.
func (ps *ParallelSim) value(n int) uint64 {
	if ps.stamp[n] == ps.cur {
		return ps.val[n]
	}
	return ps.good[n]
}

// FaultMask simulates one fault against the loaded block, returning a
// bitmask of the patterns (bit p = pattern p) that detect it.
func (ps *ParallelSim) FaultMask(f Fault) uint64 {
	ps.cur++
	ps.nMasks++
	c := ps.c
	stuckWord := uint64(0)
	if f.SA == logic.One {
		stuckWord = ^uint64(0)
	}

	var detected uint64
	push := func(net int, word uint64) {
		if word == ps.value(net) {
			return
		}
		ps.val[net] = word
		ps.stamp[net] = ps.cur
		if ps.isObs[net] {
			detected |= word ^ ps.good[net]
		}
		for _, reader := range c.Fanout[net] {
			if !c.Gates[reader].Type.IsCombinational() {
				continue
			}
			if ps.queued[reader] != ps.cur {
				ps.queued[reader] = ps.cur
				lv := c.Level[reader]
				ps.byLevel[lv] = append(ps.byLevel[lv], reader)
			}
		}
	}

	var startLevel int
	if f.Pin == Stem {
		push(f.Gate, stuckWord)
		startLevel = c.Level[f.Gate]
	} else {
		// Branch fault: only gate f.Gate sees the corrupt operand.
		g := &c.Gates[f.Gate]
		in := ps.scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = ps.value(src)
		}
		in[f.Pin] = stuckWord
		push(f.Gate, g.Type.EvalWord(in))
		ps.nEvals++
		startLevel = c.Level[f.Gate]
	}

	for lv := startLevel; lv < len(ps.byLevel); lv++ {
		bucket := ps.byLevel[lv]
		ps.byLevel[lv] = ps.byLevel[lv][:0]
		for _, id := range bucket {
			if id == f.Gate && f.Pin != Stem {
				// Already evaluated with the corrupt operand.
				continue
			}
			g := &c.Gates[id]
			in := ps.scratch[:len(g.Fanin)]
			for i, src := range g.Fanin {
				in[i] = ps.value(src)
			}
			w := g.Type.EvalWord(in)
			ps.nEvals++
			if f.Pin == Stem && id == f.Gate {
				w = stuckWord
			}
			push(id, w)
		}
	}
	return detected
}

// GoodWord returns the good-machine word of net n for the loaded block.
func (ps *ParallelSim) GoodWord(n int) uint64 { return ps.good[n] }

// FaultyWord returns net n's word as left by the most recent FaultMask
// call (the good word if the fault never reached n).
func (ps *ParallelSim) FaultyWord(n int) uint64 { return ps.value(n) }

// liveFor returns the simulator's reusable live-fault scratch list,
// grown to n entries.
func (ps *ParallelSim) liveFor(n int) []int {
	if cap(ps.liveBuf) < n {
		ps.liveBuf = make([]int, n)
	}
	return ps.liveBuf[:n]
}

// blockLoop grades faults against the packed pattern set block by
// block on ps, writing outcomes into detected and detectedBy (indexed
// like faults; recorded pattern indices are absolute within the set).
// It is the shared inner loop of every parallel-pattern path: the
// engine calls it once per shard with subslices of the full result
// arrays, so all writes stay inside the caller's range. The pattern
// blocks are packed once by the caller and shared read-only across
// every shard and worker. Work counters accumulate on ps for the
// caller to drain, the live list reuses ps scratch (no allocation
// after warmup), and cancellation is checked between blocks.
func blockLoop(ctx context.Context, ps *ParallelSim, faults []Fault, pats *PackedPatterns, drop bool,
	detected []bool, detectedBy []int, dropHist *telemetry.Histogram) (caught int, blocks int64, err error) {
	live := ps.liveFor(len(faults))
	for i := range live {
		live[i] = i
	}
	for bi := 0; bi < pats.NumBlocks(); bi++ {
		if err := ctx.Err(); err != nil {
			return caught, blocks, err
		}
		base := bi * 64
		words, kb := pats.Block(bi)
		k := ps.LoadPackedBlock(words, kb)
		blocks++
		caughtBefore := caught
		mask := ^uint64(0)
		if k < 64 {
			mask = 1<<uint(k) - 1
		}
		next := live[:0]
		for _, fi := range live {
			det := ps.FaultMask(faults[fi]) & mask
			if det == 0 {
				next = append(next, fi)
				continue
			}
			if !detected[fi] {
				detected[fi] = true
				detectedBy[fi] = base + bits.TrailingZeros64(det)
				caught++
			}
			if !drop {
				next = append(next, fi)
			}
		}
		if drop && dropHist != nil {
			dropHist.Observe(int64(caught - caughtBefore))
		}
		live = next
		if len(live) == 0 {
			break
		}
	}
	return caught, blocks, nil
}
