package fault

import (
	"context"
	"fmt"
	"testing"

	"dft/internal/circuits"
	"dft/internal/sim"
)

// withKernel runs fn under the given kernel default, restoring the
// previous selection afterwards. Kernel-toggling tests must not run in
// parallel with each other.
func withKernel(k sim.Kernel, fn func()) {
	prev := sim.SetDefaultKernel(k)
	defer sim.SetDefaultKernel(prev)
	fn()
}

// TestKernelInvariance is the cross-kernel acceptance criterion:
// fault.Simulate produces byte-identical Results under the interpreted
// and compiled kernels, at every worker count, on every backend,
// dropping or not.
func TestKernelInvariance(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 200, 23)
	for _, be := range []Backend{BackendSerial, BackendParallel, BackendDeductive, BackendFaultParallel, BackendCPT} {
		for _, drop := range []DropMode{DropOn, DropOff} {
			if be == BackendDeductive && drop == DropOn {
				continue // deductive backend is no-drop only
			}
			var base *Result
			withKernel(sim.KernelInterp, func() {
				var err error
				base, err = Simulate(context.Background(), c, faults, pats,
					Options{Backend: be, Workers: 1, Drop: drop})
				if err != nil {
					t.Fatal(err)
				}
			})
			for _, w := range []int{1, 2, 4, 8} {
				withKernel(sim.KernelCompiled, func() {
					got, err := Simulate(context.Background(), c, faults, pats,
						Options{Backend: be, Workers: w, Drop: drop})
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, fmt.Sprintf("backend=%v kernel=compiled workers=%d drop=%v", be, w, drop), got, base)
				})
				if be == BackendSerial || be == BackendDeductive {
					break // worker count only matters on the sharded paths
				}
			}
		}
	}
}

// TestRunPackedMatchesRun checks that a pre-packed pattern set grades
// identically to the scalar set it encodes, on every backend.
func TestRunPackedMatchesRun(t *testing.T) {
	c := circuits.ALU74181()
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 150, 5)
	packed := PackPatternSet(len(c.PIs), pats)
	if packed.NumPatterns() != len(pats) {
		t.Fatalf("packed %d patterns, want %d", packed.NumPatterns(), len(pats))
	}
	for _, be := range []Backend{BackendSerial, BackendParallel, BackendFaultParallel, BackendCPT} {
		want, err := Simulate(context.Background(), c, faults, pats, Options{Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewEngine(c, Options{Backend: be}).RunPacked(context.Background(), faults, packed)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("packed backend=%v", be), got, want)
	}
}

// TestPackedPatternsRoundTrip checks At/Patterns invert Append.
func TestPackedPatternsRoundTrip(t *testing.T) {
	pats := enginePatterns(9, 130, 77)
	pp := NewPackedPatterns(9)
	for _, p := range pats {
		pp.Append(p)
	}
	if pp.NumBlocks() != 3 {
		t.Fatalf("130 patterns in %d blocks, want 3", pp.NumBlocks())
	}
	for i, p := range pats {
		got := pp.At(i)
		for j := range p {
			if got[j] != p[j] {
				t.Fatalf("pattern %d input %d: %v want %v", i, j, got[j], p[j])
			}
		}
	}
}

// TestAppendEnumMatchesScalar checks the mask-synthesized enumeration
// (aligned and mid-block starts) against per-pattern appends.
func TestAppendEnumMatchesScalar(t *testing.T) {
	free := []int{2, 0, 5, 3, 1, 6, 4} // scrambled positions, n=7 crosses block boundary
	fixed := []int{7}
	for _, prefix := range []int{0, 3} { // 3 ≠ 0 mod 64 forces the unaligned path
		fast := NewPackedPatterns(8)
		slow := NewPackedPatterns(8)
		pad := make([]bool, 8)
		for i := 0; i < prefix; i++ {
			fast.Append(pad)
			slow.Append(pad)
		}
		fast.AppendEnum(free, fixed)
		p := make([]bool, 8)
		for _, pos := range fixed {
			p[pos] = true
		}
		for x := 0; x < 1<<uint(len(free)); x++ {
			for b, pos := range free {
				p[pos] = x>>uint(b)&1 == 1
			}
			slow.Append(p)
		}
		if fast.NumPatterns() != slow.NumPatterns() {
			t.Fatalf("prefix=%d: %d patterns, want %d", prefix, fast.NumPatterns(), slow.NumPatterns())
		}
		for i := 0; i < fast.NumPatterns(); i++ {
			fp, sp := fast.At(i), slow.At(i)
			for j := range fp {
				if fp[j] != sp[j] {
					t.Fatalf("prefix=%d pattern %d input %d: %v want %v", prefix, i, j, fp[j], sp[j])
				}
			}
		}
	}
}

// TestSessionKernelInvariance re-checks the ATPG grading path: a
// session's incremental blocks drop the same faults under both kernels.
func TestSessionKernelInvariance(t *testing.T) {
	c := circuits.ALU74181()
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 192, 9)
	type outcome struct {
		detected []bool
		useful   []uint64
		caught   int
	}
	run := func() outcome {
		e := NewEngine(c, Options{Workers: 4, Drop: DropOn})
		s := e.NewSession(faults)
		o := outcome{detected: make([]bool, len(faults))}
		for base := 0; base < len(pats); base += 64 {
			o.useful = append(o.useful, s.ApplyBlock(pats[base:base+64], o.detected))
		}
		o.caught = s.Caught()
		return o
	}
	var interp, compiled outcome
	withKernel(sim.KernelInterp, func() { interp = run() })
	withKernel(sim.KernelCompiled, func() { compiled = run() })
	if interp.caught != compiled.caught {
		t.Fatalf("caught %d interp vs %d compiled", interp.caught, compiled.caught)
	}
	for i := range interp.detected {
		if interp.detected[i] != compiled.detected[i] {
			t.Fatalf("fault %d: interp %v compiled %v", i, interp.detected[i], compiled.detected[i])
		}
	}
	for b := range interp.useful {
		if interp.useful[b] != compiled.useful[b] {
			t.Fatalf("block %d useful mask: %#x vs %#x", b, interp.useful[b], compiled.useful[b])
		}
	}
}
