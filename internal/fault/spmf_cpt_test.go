package fault

import (
	"context"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// The fault-parallel backend must match the parallel baseline at every
// machine-packing width, not just the full word — the Parallelism axis
// of the Options surface.
func TestFaultParallelPackingWidths(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 48, 31)
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 7, 63, 64} {
		for _, drop := range []DropMode{DropOn, DropOff} {
			got, err := Simulate(context.Background(), c, faults, pats,
				Options{Backend: BackendFaultParallel, Parallelism: lanes, Drop: drop})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "parallelism", got, want)
		}
	}
}

// Scan views (flip-flops controllable, D inputs observable) must grade
// identically on the pattern-axis backends, including faults on the
// flip-flops themselves.
func TestNewBackendsScanView(t *testing.T) {
	c := circuits.Counter(4)
	faults := CollapseEquiv(c, Universe(c)).Reps
	inputs := append(append([]int{}, c.PIs...), c.DFFs...)
	outputs := append([]int{}, c.POs...)
	for _, d := range c.DFFs {
		outputs = append(outputs, c.Gates[d].Fanin[0])
	}
	view := View{Inputs: inputs, Outputs: outputs}
	pats := enginePatterns(len(inputs), 64, 9)
	base, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1, View: view})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []Backend{BackendFaultParallel, BackendCPT} {
		got, err := Simulate(context.Background(), c, faults, pats,
			Options{Backend: be, View: view})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, be.String()+" scan view", got, base)
	}
}

// On a fanout-free circuit the observability chain rule is complete:
// cpt must grade every fault without a single explicit flip
// propagation, and still match the serial ground truth exactly.
func TestCPTFanoutFreeIsPureChainRule(t *testing.T) {
	c := circuits.ParityTree(8) // a tree: every gate output has one reader
	faults := Universe(c)
	pats := enginePatterns(len(c.PIs), 64, 41)
	reg := telemetry.NewRegistry()
	got, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendCPT, Workers: 1, Drop: DropOff, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "cpt on tree", got, want)
	snap := reg.Snapshot()
	if snap.Counters["fault.cpt.flips"] != 0 {
		t.Fatalf("tree circuit forced %d explicit flip propagations, want 0",
			snap.Counters["fault.cpt.flips"])
	}
	if snap.Counters["fault.cpt.chain_obs"] == 0 {
		t.Fatal("chain-rule observability never computed")
	}
}

// On reconvergent fanout the chain rule is unsound, so cpt must fall
// back to explicit complement propagation at the stems — and still be
// exact. The classic trap is a fault reaching an XOR along both paths
// (even parity cancels); c17 adds the NAND reconvergence case.
func TestCPTReconvergenceExact(t *testing.T) {
	b := logic.New("xorre")
	a := b.AddInput("a")
	x := b.AddInput("x")
	n1 := b.AddGate(logic.Nand, "n1", a, x)
	y1 := b.AddGate(logic.Xor, "y1", n1, a) // `a` reconverges at the XOR
	b.MarkOutput(y1)
	xorre := b.MustFinalize()

	for _, c := range []*logic.Circuit{xorre, circuits.C17(), circuits.ALU74181()} {
		faults := Universe(c)
		pats := enginePatterns(len(c.PIs), 64, 43)
		reg := telemetry.NewRegistry()
		got, err := Simulate(context.Background(), c, faults, pats,
			Options{Backend: BackendCPT, Workers: 1, Drop: DropOff, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Simulate(context.Background(), c, faults, pats,
			Options{Backend: BackendSerial})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, c.Name, got, want)
		if reg.Snapshot().Counters["fault.cpt.flips"] == 0 {
			t.Fatalf("%s: reconvergent circuit graded without any flip fallback", c.Name)
		}
	}
}

// An engine configured for a pattern-axis backend still serves
// sessions (which run the PPSFP block path on the same simulator
// pool) without interference from prior Run state.
func TestSessionOnFaultParallelEngine(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 128, 17)
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []Backend{BackendFaultParallel, BackendCPT} {
		eng := NewEngine(c, Options{Backend: be, Workers: 2, Metrics: telemetry.NewRegistry()})
		// Dirty the pooled simulators with a backend run first.
		if _, err := eng.Run(context.Background(), faults, pats[:64]); err != nil {
			t.Fatal(err)
		}
		s := eng.NewSession(faults)
		detected := make([]bool, len(faults))
		for base := 0; base < len(pats); base += 64 {
			s.ApplyBlock(pats[base:base+64], detected)
		}
		if s.Caught() != want.NumCaught {
			t.Fatalf("%v engine: session caught %d, want %d", be, s.Caught(), want.NumCaught)
		}
		for i := range faults {
			if detected[i] != want.Detected[i] {
				t.Fatalf("%v engine fault %d: detected %v, want %v", be, i, detected[i], want.Detected[i])
			}
		}
	}
}

// Per-run telemetry for the new backends: the shared progress and
// detection counters plus each backend's own work counters must flush.
func TestNewBackendTelemetry(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	faults := Universe(c)
	pats := enginePatterns(len(c.PIs), 64, 3)
	reg := telemetry.NewRegistry()
	if _, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendFaultParallel, Workers: 4, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["fault.spmf.groups"] == 0 || snap.Counters["fault.spmf.word_passes"] == 0 {
		t.Fatalf("spmf work counters not flushed: %v", snap.Counters)
	}
	if snap.Counters["fault.sim.patterns"] != int64(len(pats)) {
		t.Fatalf("fault.sim.patterns = %d, want %d", snap.Counters["fault.sim.patterns"], len(pats))
	}

	reg = telemetry.NewRegistry()
	if _, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendCPT, Workers: 4, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if snap.Counters["fault.cpt.chain_obs"] == 0 {
		t.Fatalf("cpt work counters not flushed: %v", snap.Counters)
	}
	if snap.Counters["fault.sim.detected"] == 0 {
		t.Fatal("detections not flushed")
	}
}
