package fault

import (
	"context"
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// Simulate is the toolkit's single fault-simulation entry point: it
// grades the pattern set against the fault list under Options and
// returns per-fault outcomes. Every configuration — any backend, any
// worker count, any machine packing — produces bit-identical Results
// (same Detected, DetectedBy first-pattern indices, NumCaught),
// because per-fault outcomes are independent; the options only trade
// time for memory.
func Simulate(ctx context.Context, c *logic.Circuit, faults []Fault, patterns [][]bool, opts Options) (*Result, error) {
	return NewEngine(c, opts).Run(ctx, faults, patterns)
}

// Engine is a sharded multicore PPSFP fault-simulation scheduler. It
// owns one ParallelSim per worker slot — the expensive per-simulation
// state (good-machine words, overlay stamps, level buckets) — and
// reuses them across runs, chunks and session blocks, so the inner
// loops allocate nothing. Worker goroutines are scattered per run and
// joined before Run returns; the fault list is dealt out in dynamic
// chunks through an atomic cursor, which absorbs the load skew fault
// dropping creates across shards.
//
// An Engine is not safe for concurrent use; create one per goroutine.
// Result merging needs no locks: each chunk owns a disjoint range of
// the result arrays, so workers write their outcomes directly.
type Engine struct {
	c       *logic.Circuit
	opts    Options
	inputs  []int
	outputs []int
	workers int
	reg     *telemetry.Registry
	sims    []*ParallelSim // per worker slot, built lazily
	spmfs   []*spmfSim     // per worker slot, SPMF backend
	cpts    []*cptSim      // per worker slot, CPT backend
	topo    *cptTopo       // fanout classification, built lazily, shared read-only
}

// NewEngine prepares an engine for the circuit under the given
// options. Construction is cheap; per-worker simulators are built on
// first use.
func NewEngine(c *logic.Circuit, opts Options) *Engine {
	inputs, outputs := opts.View.resolve(c)
	w := opts.workers()
	reg := telemetry.OrDefault(opts.Metrics)
	// Surface the compiled kernel's netlist-reduction stats on the
	// run's own registry, so per-job run reports show how much smaller
	// the simulated circuit is than the source netlist.
	if p := sim.ActiveProgram(c); p != nil {
		reg.Gauge("sim.compile.folded_gates").Set(int64(p.Folded()))
		reg.Gauge("sim.compile.hashed_gates").Set(int64(p.Hashed()))
	}
	return &Engine{
		c:       c,
		opts:    opts,
		inputs:  inputs,
		outputs: outputs,
		workers: w,
		reg:     reg,
		sims:    make([]*ParallelSim, w),
		spmfs:   make([]*spmfSim, w),
		cpts:    make([]*cptSim, w),
	}
}

// drop reports whether fault dropping is enabled.
func (e *Engine) drop() bool { return e.opts.Drop == DropOn }

// sim returns worker slot wi's simulator, building it on first use.
// Distinct slots are touched only by their own worker goroutine.
func (e *Engine) sim(wi int) *ParallelSim {
	if e.sims[wi] == nil {
		e.sims[wi] = NewParallelSimView(e.c, e.inputs, e.outputs)
	}
	return e.sims[wi]
}

// spmfSim returns worker slot wi's SPMF simulator, built on first use.
func (e *Engine) spmfSim(wi int) *spmfSim {
	if e.spmfs[wi] == nil {
		e.spmfs[wi] = newSPMFSim(e.c, e.inputs, e.outputs)
	}
	return e.spmfs[wi]
}

// cptSim returns worker slot wi's CPT simulator, built on first use
// around the slot's pooled ParallelSim. The fanout classification is
// computed once per engine; workers share it read-only, but it is
// built eagerly (before worker goroutines scatter) by runCPT's callers
// through this accessor for slot 0 or under the engine's single-
// goroutine ownership contract.
func (e *Engine) cptSim(wi int) *cptSim {
	if e.cpts[wi] == nil {
		e.cpts[wi] = newCPTSim(e.sim(wi), e.cptTopo())
	}
	return e.cpts[wi]
}

// cptTopo returns the engine's shared fanout classification, built on
// first use.
func (e *Engine) cptTopo() *cptTopo {
	if e.topo == nil {
		e.topo = buildCPTTopo(e.c)
	}
	return e.topo
}

// Run simulates the fault list against the pattern set, honoring
// context cancellation between pattern blocks. On cancellation it
// returns ctx's error and no Result.
func (e *Engine) Run(ctx context.Context, faults []Fault, patterns [][]bool) (*Result, error) {
	be := e.opts.Backend
	if be == Auto {
		be = pickBackend(e.c, len(faults), len(patterns), e.drop())
	}
	switch be {
	case BackendDeductive:
		return runDeductive(ctx, e.c, e.inputs, e.outputs, faults, patterns, e.reg)
	case BackendSerial:
		return e.runSerial(ctx, faults, patterns)
	case BackendFaultParallel:
		return e.runFaultParallel(ctx, faults, patterns)
	case BackendCPT:
		return e.runCPT(ctx, faults, PackPatternSet(len(e.inputs), patterns))
	default:
		// Pack the pattern set once; every worker shares the blocks
		// read-only instead of repacking them per chunk.
		return e.runParallel(ctx, faults, PackPatternSet(len(e.inputs), patterns))
	}
}

// RunPacked is Run for a pattern set already in packed PPSFP form —
// the natural input of the exhaustive 2^N consumers (syndrome, Walsh,
// autonomous testing), which synthesize blocks from periodic masks
// without ever materializing scalar vectors. Results are byte-identical
// to Run on the equivalent scalar set. Backends that walk patterns one
// at a time (serial, deductive) unpack on entry.
func (e *Engine) RunPacked(ctx context.Context, faults []Fault, pats *PackedPatterns) (*Result, error) {
	if pats.NumInputs() != len(e.inputs) {
		panic(fmt.Sprintf("fault: packed patterns are %d wide for %d view inputs", pats.NumInputs(), len(e.inputs)))
	}
	be := e.opts.Backend
	if be == Auto {
		be = pickBackend(e.c, len(faults), pats.NumPatterns(), e.drop())
	}
	switch be {
	case BackendDeductive:
		return runDeductive(ctx, e.c, e.inputs, e.outputs, faults, pats.Patterns(), e.reg)
	case BackendSerial:
		return e.runSerial(ctx, faults, pats.Patterns())
	case BackendFaultParallel:
		return e.runFaultParallel(ctx, faults, pats.Patterns())
	case BackendCPT:
		return e.runCPT(ctx, faults, pats)
	default:
		return e.runParallel(ctx, faults, pats)
	}
}

// pickBackend implements the Auto heuristics; the selection table is
// documented in DESIGN.md. Tiny jobs skip engine setup and run
// serially. No-drop fault-heavy gradings trace observability from the
// good machine (CPT grades every fault in O(1) per block), except that
// small combinational instances keep the deductive backend, whose
// per-pattern fault-list unions are competitive there. Pattern-starved
// gradings pack the fault axis (SPMF keeps all 64 lanes busy where
// PPSFP blocks run nearly empty); everything else takes the sharded
// parallel-pattern path.
func pickBackend(c *logic.Circuit, nFaults, nPatterns int, drop bool) Backend {
	if nFaults*nPatterns <= 512 {
		return BackendSerial
	}
	if !drop && nFaults >= 4*nPatterns {
		if len(c.DFFs) == 0 && nFaults*nPatterns <= 1<<15 {
			return BackendDeductive
		}
		return BackendCPT
	}
	if nPatterns <= 16 && nFaults >= 64*nPatterns {
		return BackendFaultParallel
	}
	return BackendParallel
}

// newResult allocates a Result with no detections recorded.
func newResult(faults []Fault, numPats int) *Result {
	res := &Result{
		Faults:     faults,
		Detected:   make([]bool, len(faults)),
		DetectedBy: make([]int, len(faults)),
		NumPats:    numPats,
	}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	return res
}

// chunkSize picks the dynamic-queue chunk: ~4 chunks per worker
// amortizes the per-chunk good-machine passes while still letting the
// queue rebalance dropped-out shards, with a floor so a chunk is worth
// its dispatch.
func chunkSize(n, workers int) int {
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < 64 {
		chunk = 64
	}
	return chunk
}

// runParallel is the PPSFP path: single-threaded when one worker
// suffices, otherwise the fault list is sharded across workers in
// dynamic chunks and every worker grades its chunks on its own pooled
// simulator.
func (e *Engine) runParallel(ctx context.Context, faults []Fault, pats *PackedPatterns) (*Result, error) {
	reg := e.reg
	nPats := pats.NumPatterns()
	// The span observes the same-named timer on End, so run-report
	// timers keep the fault.sim.engine entry older consumers expect.
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "fault.sim.engine")
	span.SetAttr("faults", strconv.Itoa(len(faults)))
	span.SetAttr("patterns", strconv.Itoa(nPats))
	defer span.End()
	// Progress: faults graded vs. total, ticked once per chunk from
	// the dispatch loop — batched atomics, per the package discipline.
	var prog *telemetry.Progress
	if !e.opts.NoProgress {
		prog = reg.Progress("fault.sim.progress")
		prog.AddTotal(int64(len(faults)))
	}
	w := e.workers
	if w > len(faults) {
		w = len(faults)
	}
	span.SetAttr("workers", strconv.Itoa(w))
	var dropHist *telemetry.Histogram
	if e.drop() {
		dropHist = reg.Histogram("fault.sim.drops_per_block")
	}
	res := newResult(faults, nPats)
	if w <= 1 {
		ps := e.sim(0)
		caught, blocks, err := blockLoop(ctx, ps, faults, pats, e.drop(), res.Detected, res.DetectedBy, dropHist)
		masks, evals := ps.TakeCounts()
		reg.Counter("fault.sim.faultmasks").Add(masks)
		reg.Counter("fault.sim.events").Add(evals)
		reg.Counter("fault.sim.blocks").Add(blocks)
		if err != nil {
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
		if prog != nil {
			prog.Add(int64(len(faults)))
		}
		res.NumCaught = caught
		reg.Counter("fault.sim.patterns").Add(int64(nPats))
		reg.Counter("fault.sim.detected").Add(int64(caught))
		return res, nil
	}

	reg.Gauge("fault.sim.workers").Set(int64(w))
	reg.Counter("fault.engine.runs").Inc()
	chunk := chunkSize(len(faults), w)
	shardHist := reg.Histogram("fault.engine.shard_faults")
	var cursor, caught, blocks, shards atomic.Int64
	errs := make([]error, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			ps := e.sim(wi)
			var myCaught, myBlocks int64
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= len(faults) {
					break
				}
				if err := ctx.Err(); err != nil {
					errs[wi] = err
					break
				}
				hi := lo + chunk
				if hi > len(faults) {
					hi = len(faults)
				}
				shards.Add(1)
				shardHist.Observe(int64(hi - lo))
				n, nb, err := blockLoop(ctx, ps, faults[lo:hi], pats, e.drop(),
					res.Detected[lo:hi], res.DetectedBy[lo:hi], dropHist)
				myCaught += int64(n)
				myBlocks += nb
				if err != nil {
					errs[wi] = err
					break
				}
				if prog != nil {
					prog.Add(int64(hi - lo))
				}
			}
			caught.Add(myCaught)
			blocks.Add(myBlocks)
			masks, evals := ps.TakeCounts()
			reg.Counter("fault.sim.faultmasks").Add(masks)
			reg.Counter("fault.sim.events").Add(evals)
		}(wi)
	}
	wg.Wait()
	reg.Counter("fault.engine.shards").Add(shards.Load())
	reg.Counter("fault.sim.blocks").Add(blocks.Load())
	for _, err := range errs {
		if err != nil {
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
	}
	res.NumCaught = int(caught.Load())
	reg.Counter("fault.sim.patterns").Add(int64(nPats))
	reg.Counter("fault.sim.detected").Add(int64(res.NumCaught))
	return res, nil
}

// runSerial is the scalar backend: one good-machine pass per pattern
// (shared across faults), one faulty-machine pass per live fault per
// pattern. Detection semantics mirror the PPSFP engine exactly,
// including its view conventions (unlisted sources held at 0) and its
// treatment of faults on source elements.
func (e *Engine) runSerial(ctx context.Context, faults []Fault, patterns [][]bool) (*Result, error) {
	reg := e.reg
	defer reg.Timer("fault.sim.serial").Time()()
	res := newResult(faults, len(patterns))
	n := e.c.NumNets()
	good := make([]bool, n)
	bad := make([]bool, n)
	scratch := make([]bool, e.c.MaxFanin())
	prog := sim.ActiveProgram(e.c)
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	drop := e.drop()
	passes := int64(0)
	for pi, p := range patterns {
		if err := ctx.Err(); err != nil {
			cSerialEvals.Add(passes)
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
		if len(live) == 0 && drop {
			break
		}
		e.loadSerial(p, good, scratch, prog)
		passes++
		next := live[:0]
		for _, fi := range live {
			f := faults[fi]
			if res.Detected[fi] {
				// No-drop mode keeps detected faults in the loop for the
				// ablation's work accounting, but first detections stand.
				passes++
				e.serialDetects(f, good, bad, scratch)
				next = append(next, fi)
				continue
			}
			passes++
			if e.serialDetects(f, good, bad, scratch) {
				res.Detected[fi] = true
				res.DetectedBy[fi] = pi
				res.NumCaught++
				if !drop {
					next = append(next, fi)
				}
				continue
			}
			next = append(next, fi)
		}
		live = next
	}
	cSerialEvals.Add(passes)
	reg.Counter("fault.sim.patterns").Add(int64(len(patterns)))
	reg.Counter("fault.sim.detected").Add(int64(res.NumCaught))
	return res, nil
}

// loadSerial computes the good machine for one pattern under the
// engine's view: unlisted source elements at 0, pattern bits on the
// view inputs, then a levelized pass through prog when the compiled
// kernel is active (the faulty passes stay interpreted — they need
// per-gate injection hooks the straight-line program doesn't have).
func (e *Engine) loadSerial(p []bool, vals, scratch []bool, prog *sim.Program) {
	c := e.c
	for _, pi := range c.PIs {
		vals[pi] = false
	}
	for _, d := range c.DFFs {
		vals[d] = false
	}
	for i, b := range p {
		vals[e.inputs[i]] = b
	}
	if prog != nil {
		prog.ExecBool(vals)
		return
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = vals[src]
		}
		vals[id] = g.Type.EvalBool(in)
	}
}

// serialDetects runs the faulty machine for f against the loaded good
// machine and reports whether any view output differs.
func (e *Engine) serialDetects(f Fault, good, bad, scratch []bool) bool {
	c := e.c
	stuck := f.SA == logic.One
	for _, pi := range c.PIs {
		bad[pi] = good[pi]
	}
	for _, d := range c.DFFs {
		bad[d] = good[d]
	}
	if !c.Gates[f.Gate].Type.IsCombinational() {
		// A stem fault pins the source net; a DFF D-pin fault replaces
		// the whole captured operand, which the element passes through.
		bad[f.Gate] = stuck
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = bad[src]
		}
		if f.Pin != Stem && f.Gate == id {
			in[f.Pin] = stuck
		}
		v := g.Type.EvalBool(in)
		if f.Pin == Stem && f.Gate == id {
			v = stuck
		}
		bad[id] = v
	}
	for _, o := range e.outputs {
		if bad[o] != good[o] {
			return true
		}
	}
	return false
}

// minSessionShard is the smallest live-fault shard worth a session
// worker: below it the block's fan-out cost exceeds the fault work.
const minSessionShard = 64

// Session is an incremental fault-dropping grader over a fixed fault
// list — the engine's interface for generator loops (random-pattern
// ATPG, compaction) that produce patterns block by block and need to
// know which patterns earned their keep. Dropping is always on: a
// session exists to shrink its live list. Replay adds the compaction
// discipline on top: a whole packed set graded in either direction
// with per-pattern first-detect credit, and Reset re-arms the fault
// list between passes without rebuilding the session (or re-collapsing
// the fault list).
type Session struct {
	e      *Engine
	faults []Fault
	live   []int
	caught int

	// per-worker scratch, reused every block
	counts  []int
	caughts []int
	credits [][64]int

	// packed holds the current block, packed once and shared read-only
	// by every worker's LoadPackedBlock.
	packed []uint64
}

// NewSession starts a grading session over faults. The session shares
// the engine's pooled simulators; like the engine it is not safe for
// concurrent use.
func (e *Engine) NewSession(faults []Fault) *Session {
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	return &Session{
		e:       e,
		faults:  faults,
		live:    live,
		counts:  make([]int, e.workers),
		caughts: make([]int, e.workers),
		credits: make([][64]int, e.workers),
		packed:  make([]uint64, len(e.inputs)),
	}
}

// Reset re-arms every fault: the live list returns to the full fault
// list and the caught count clears, while the engine's pooled
// simulators — the expensive state — carry over. Multi-pass compaction
// replays call this between passes.
func (s *Session) Reset() {
	if cap(s.live) < len(s.faults) {
		s.live = make([]int, len(s.faults))
	}
	s.live = s.live[:len(s.faults)]
	for i := range s.live {
		s.live[i] = i
	}
	s.caught = 0
}

// ReplayOrder selects the direction Replay walks a pattern set.
type ReplayOrder int

const (
	// ReplayForward walks patterns first-to-last; a caught fault
	// credits its lowest-indexed detecting pattern.
	ReplayForward ReplayOrder = iota
	// ReplayReverse walks patterns last-to-first; a caught fault
	// credits its highest-indexed detecting pattern — the reverse-order
	// compaction discipline.
	ReplayReverse
)

// creditBit picks the block bit a newly caught fault credits: the
// first detecting pattern met in walk order.
func creditBit(det uint64, order ReplayOrder) int {
	if order == ReplayReverse {
		return 63 - bits.LeadingZeros64(det)
	}
	return bits.TrailingZeros64(det)
}

// applyPacked grades one packed block (k patterns in the words' low
// bits) against the still-live faults, with dropping. Newly caught
// faults are marked in detected (indexed like the session's fault
// list) and each credits exactly one block pattern — the first one met
// in walk order — by incrementing credits[bit]. The live list is
// sharded across the engine's workers when it is large enough to pay
// for the per-worker good-machine pass; per-worker credit buffers are
// summed afterwards, so outcomes are identical for every worker count.
func (s *Session) applyPacked(words []uint64, k int, order ReplayOrder, detected []bool, credits *[64]int) {
	e := s.e
	mask := ^uint64(0)
	if k < 64 {
		mask = 1<<uint(k) - 1
	}
	w := e.workers
	if max := len(s.live) / minSessionShard; w > max {
		w = max
	}
	var masks, evals int64
	if w <= 1 {
		ps := e.sim(0)
		ps.LoadPackedBlock(words, k)
		wr := 0
		for _, fi := range s.live {
			det := ps.FaultMask(s.faults[fi]) & mask
			if det == 0 {
				s.live[wr] = fi
				wr++
				continue
			}
			detected[fi] = true
			s.caught++
			credits[creditBit(det, order)]++
		}
		s.live = s.live[:wr]
		masks, evals = ps.TakeCounts()
	} else {
		// Contiguous live ranges per worker; each worker compacts its
		// survivors in place (write index trails read index), then the
		// segments are stitched left. Order is preserved, writes are
		// disjoint, and no allocation happens past this line.
		nLive := len(s.live)
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				lo, hi := wi*nLive/w, (wi+1)*nLive/w
				ps := e.sim(wi)
				ps.LoadPackedBlock(words, k)
				wr := lo
				myCredits := &s.credits[wi]
				myCaught := 0
				for _, fi := range s.live[lo:hi] {
					det := ps.FaultMask(s.faults[fi]) & mask
					if det == 0 {
						s.live[wr] = fi
						wr++
						continue
					}
					detected[fi] = true
					myCaught++
					myCredits[creditBit(det, order)]++
				}
				s.counts[wi] = wr - lo
				s.caughts[wi] = myCaught
			}(wi)
		}
		wg.Wait()
		kept := s.counts[0]
		for wi := 1; wi < w; wi++ {
			lo := wi * nLive / w
			copy(s.live[kept:], s.live[lo:lo+s.counts[wi]])
			kept += s.counts[wi]
		}
		s.live = s.live[:kept]
		for wi := 0; wi < w; wi++ {
			s.caught += s.caughts[wi]
			for b, n := range s.credits[wi] {
				if n != 0 {
					credits[b] += n
					s.credits[wi][b] = 0
				}
			}
			m, ev := e.sims[wi].TakeCounts()
			masks += m
			evals += ev
		}
	}
	reg := e.reg
	reg.Counter("fault.sim.faultmasks").Add(masks)
	reg.Counter("fault.sim.events").Add(evals)
	reg.Counter("fault.sim.blocks").Inc()
	reg.Counter("fault.sim.patterns").Add(int64(k))
}

// ApplyBlock grades one block of up to 64 patterns against the
// still-live faults, with dropping. Newly caught faults are marked in
// detected (indexed like the session's fault list), and the returned
// mask has bit p set when block pattern p was the first detector of
// some fault — the block's "useful" patterns. The live list is sharded
// across the engine's workers when it is large enough to pay for the
// per-worker good-machine pass; outcomes are bit-identical either way.
func (s *Session) ApplyBlock(block [][]bool, detected []bool) uint64 {
	if len(block) > 64 {
		block = block[:64]
	}
	k := sim.PackPatternsInto(block, s.packed)
	var credits [64]int
	s.applyPacked(s.packed, k, ReplayForward, detected, &credits)
	var useful uint64
	for b := 0; b < k; b++ {
		if credits[b] != 0 {
			useful |= 1 << uint(b)
		}
	}
	return useful
}

// Replay grades an entire packed pattern set through the session with
// dropping, crediting each fault's first detection to exactly one
// pattern and returning the per-pattern credit counts: credits[p] is
// the number of faults pattern p first-detected, so the patterns with
// credits[p] > 0 are the set's useful patterns. Under ReplayForward
// blocks run first-to-last and a fault credits its lowest-indexed
// detecting pattern; under ReplayReverse blocks run last-to-first and
// a fault credits its highest-indexed one — exactly per-pattern
// reverse-order processing, at PPSFP block speed: dropping between
// blocks reproduces the per-pattern live lists, and within a block
// each fault's detection mask is independent of the order patterns are
// consumed. detected, when non-nil, receives the caught faults
// (indexed like the session's fault list). Cancellation is honored
// between blocks. Callers replaying a set from scratch on a used
// session call Reset first.
func (s *Session) Replay(ctx context.Context, pats *PackedPatterns, order ReplayOrder, detected []bool) ([]int, error) {
	if pats.NumInputs() != len(s.e.inputs) {
		panic(fmt.Sprintf("fault: packed patterns are %d wide for %d view inputs", pats.NumInputs(), len(s.e.inputs)))
	}
	if detected == nil {
		detected = make([]bool, len(s.faults))
	}
	credits := make([]int, pats.NumPatterns())
	nb := pats.NumBlocks()
	for i := 0; i < nb && len(s.live) > 0; i++ {
		if err := ctx.Err(); err != nil {
			s.e.reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
		bi := i
		if order == ReplayReverse {
			bi = nb - 1 - i
		}
		words, k := pats.Block(bi)
		var block [64]int
		s.applyPacked(words, k, order, detected, &block)
		base := bi * 64
		for b := 0; b < k; b++ {
			if block[b] != 0 {
				credits[base+b] = block[b]
			}
		}
	}
	return credits, nil
}

// Remaining reports the number of still-undetected faults.
func (s *Session) Remaining() int { return len(s.live) }

// Caught reports the number of detected faults.
func (s *Session) Caught() int { return s.caught }

// Coverage returns detected / total for the session's fault list.
func (s *Session) Coverage() float64 {
	if len(s.faults) == 0 {
		return 0
	}
	return float64(s.caught) / float64(len(s.faults))
}
