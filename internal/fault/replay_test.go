package fault

import (
	"context"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Replay in either order must catch exactly the faults a fresh
// one-shot Simulate catches, at every worker count and on engines
// configured for every backend (sessions always run the PPSFP block
// path, but the pooled simulators are shared with backend runs).
func TestSessionReplayMatchesSimulate(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 192, 29)
	packed := PackPatternSet(len(c.PIs), pats)
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendSerial})
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []Backend{BackendParallel, BackendFaultParallel, BackendCPT} {
		for _, w := range []int{1, 4} {
			for _, order := range []ReplayOrder{ReplayForward, ReplayReverse} {
				eng := NewEngine(c, Options{Backend: be, Workers: w, Metrics: telemetry.NewRegistry()})
				s := eng.NewSession(faults)
				detected := make([]bool, len(faults))
				credits, err := s.Replay(context.Background(), packed, order, detected)
				if err != nil {
					t.Fatal(err)
				}
				if s.Caught() != want.NumCaught {
					t.Fatalf("%v workers=%d order=%v: caught %d, want %d", be, w, order, s.Caught(), want.NumCaught)
				}
				for i := range faults {
					if detected[i] != want.Detected[i] {
						t.Fatalf("%v workers=%d order=%v fault %d: detected %v, want %v",
							be, w, order, i, detected[i], want.Detected[i])
					}
				}
				sum := 0
				for _, n := range credits {
					sum += n
				}
				if sum != want.NumCaught {
					t.Fatalf("%v workers=%d order=%v: credit sum %d, want %d", be, w, order, sum, want.NumCaught)
				}
			}
		}
	}
}

// Forward replay assigns each fault's credit to the same pattern a
// dropping Simulate records in DetectedBy: per-pattern credit counts
// must equal the DetectedBy histogram.
func TestSessionReplayForwardMatchesDetectedBy(t *testing.T) {
	c := circuits.ALU74181()
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 160, 7)
	want, err := Simulate(context.Background(), c, faults, pats,
		Options{Backend: BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]int, len(pats))
	for fi := range faults {
		if p := want.DetectedBy[fi]; p >= 0 {
			hist[p]++
		}
	}
	eng := NewEngine(c, Options{Workers: 4, Metrics: telemetry.NewRegistry()})
	s := eng.NewSession(faults)
	credits, err := s.Replay(context.Background(), PackPatternSet(len(c.PIs), pats), ReplayForward, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p := range pats {
		if credits[p] != hist[p] {
			t.Fatalf("pattern %d: credit %d, want %d", p, credits[p], hist[p])
		}
	}
}

// The reverse-order compaction theorem: the patterns credited by a
// reverse replay, kept in original order, catch exactly the faults the
// full set catches — verified by a fresh Simulate over the kept set.
func TestSessionReplayReverseKeptCoverage(t *testing.T) {
	for _, c := range []*logic.Circuit{circuits.ArrayMultiplier(5), circuits.ALU74181()} {
		faults := CollapseEquiv(c, Universe(c)).Reps
		pats := enginePatterns(len(c.PIs), 256, 41)
		want, err := Simulate(context.Background(), c, faults, pats,
			Options{Backend: BackendSerial})
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(c, Options{Workers: 4, Metrics: telemetry.NewRegistry()})
		s := eng.NewSession(faults)
		credits, err := s.Replay(context.Background(), PackPatternSet(len(c.PIs), pats), ReplayReverse, nil)
		if err != nil {
			t.Fatal(err)
		}
		var kept [][]bool
		for p, n := range credits {
			if n > 0 {
				kept = append(kept, pats[p])
			}
		}
		if len(kept) >= len(pats) {
			t.Fatalf("%s: reverse replay kept all %d patterns", c.Name, len(pats))
		}
		got, err := Simulate(context.Background(), c, faults, kept,
			Options{Backend: BackendSerial})
		if err != nil {
			t.Fatal(err)
		}
		if got.NumCaught != want.NumCaught {
			t.Fatalf("%s: kept set catches %d faults, full set %d", c.Name, got.NumCaught, want.NumCaught)
		}
		for i := range faults {
			if got.Detected[i] != want.Detected[i] {
				t.Fatalf("%s fault %d: kept-set detection diverged", c.Name, i)
			}
		}
	}
}

// Reset re-arms the session: a second replay over the same set must
// reproduce the first one's credits exactly, and interleaving with
// ApplyBlock must not disturb it.
func TestSessionResetReplay(t *testing.T) {
	c := circuits.RippleAdder(6)
	faults := CollapseEquiv(c, Universe(c)).Reps
	pats := enginePatterns(len(c.PIs), 128, 3)
	packed := PackPatternSet(len(c.PIs), pats)
	eng := NewEngine(c, Options{Workers: 2, Metrics: telemetry.NewRegistry()})
	s := eng.NewSession(faults)
	first, err := s.Replay(context.Background(), packed, ReplayReverse, nil)
	if err != nil {
		t.Fatal(err)
	}
	caught := s.Caught()
	s.Reset()
	if s.Caught() != 0 || s.Remaining() != len(faults) {
		t.Fatalf("after Reset: caught=%d remaining=%d", s.Caught(), s.Remaining())
	}
	// Dirty the live list with a forward block pass, then reset again.
	s.ApplyBlock(pats[:64], make([]bool, len(faults)))
	s.Reset()
	again, err := s.Replay(context.Background(), packed, ReplayReverse, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Caught() != caught {
		t.Fatalf("second replay caught %d, first %d", s.Caught(), caught)
	}
	for p := range first {
		if first[p] != again[p] {
			t.Fatalf("pattern %d: credits %d then %d", p, first[p], again[p])
		}
	}
}

// Per-pattern credits are sharding-invariant: every worker count must
// produce the identical credit vector, not just the same totals.
func TestSessionReplayWorkerInvariance(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	faults := Universe(c) // uncollapsed: large enough to shard
	pats := enginePatterns(len(c.PIs), 192, 11)
	packed := PackPatternSet(len(c.PIs), pats)
	var base []int
	for _, w := range []int{1, 2, 4, 8} {
		eng := NewEngine(c, Options{Workers: w, Metrics: telemetry.NewRegistry()})
		s := eng.NewSession(faults)
		credits, err := s.Replay(context.Background(), packed, ReplayReverse, nil)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = credits
			continue
		}
		for p := range base {
			if credits[p] != base[p] {
				t.Fatalf("workers=%d pattern %d: credit %d, want %d", w, p, credits[p], base[p])
			}
		}
	}
}

func TestSessionReplayCancellation(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	faults := Universe(c)
	packed := PackPatternSet(len(c.PIs), enginePatterns(len(c.PIs), 128, 2))
	eng := NewEngine(c, Options{Metrics: telemetry.NewRegistry()})
	s := eng.NewSession(faults)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if credits, err := s.Replay(ctx, packed, ReplayReverse, nil); err == nil || credits != nil {
		t.Fatalf("want cancellation error, got credits=%v err=%v", credits, err)
	}
}
