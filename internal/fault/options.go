package fault

import (
	"fmt"
	"runtime"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Backend selects the fault-simulation algorithm behind Simulate. The
// zero value, Auto, picks one from circuit and workload heuristics;
// the selection table lives in DESIGN.md.
type Backend int

const (
	// Auto picks a backend from fault-count, pattern-count and circuit
	// heuristics: tiny jobs run serially, large no-drop gradings of
	// combinational circuits run deductively, everything else runs on
	// the sharded parallel-pattern engine.
	Auto Backend = iota
	// BackendParallel is the 64-way parallel-pattern single-fault
	// (PPSFP) simulator, sharded across workers.
	BackendParallel
	// BackendDeductive is Armstrong's deductive simulator: one
	// levelized pass per pattern carrying every fault list at once.
	BackendDeductive
	// BackendSerial simulates one good/faulty machine pair per pattern
	// — the paper's "3001 good machine simulations" cost model.
	BackendSerial
)

// String names the backend as accepted by the dftc -engine flag.
func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case BackendParallel:
		return "parallel"
	case BackendDeductive:
		return "deductive"
	case BackendSerial:
		return "serial"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend maps a dftc -engine flag value to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "parallel":
		return BackendParallel, nil
	case "deductive":
		return BackendDeductive, nil
	case "serial":
		return BackendSerial, nil
	}
	return Auto, fmt.Errorf("fault: unknown backend %q (want auto, parallel, deductive or serial)", s)
}

// DropMode controls fault dropping. The zero value enables dropping —
// the production configuration — so a zero Options is the fast path.
type DropMode int

const (
	// DropOn removes a fault from further simulation after its first
	// detection. Detection outcomes (Detected, DetectedBy) are
	// identical either way; dropping only saves work.
	DropOn DropMode = iota
	// DropOff grades every fault against every pattern — the ablation
	// setting measuring what dropping buys.
	DropOff
)

// WorkersAuto (the Workers zero value) shards the fault list across
// runtime.GOMAXPROCS(0) workers. Results are bit-identical for every
// worker count, so auto is safe as a default.
const WorkersAuto = 0

// View names the nets the tester controls and observes. The zero value
// selects the primary view (pattern bits over c.PIs, detection at
// c.POs); a full-scan view adds the flip-flops on both sides. Every
// input must be a source element (Input or DFF); source elements not
// listed are held at 0, the toolkit's reset state.
type View struct {
	Inputs  []int
	Outputs []int
}

// isPrimary reports whether the view is the zero value.
func (v View) isPrimary() bool { return v.Inputs == nil && v.Outputs == nil }

// resolve returns the concrete input/output net lists for c.
func (v View) resolve(c *logic.Circuit) (inputs, outputs []int) {
	if v.isPrimary() {
		return c.PIs, c.POs
	}
	return v.Inputs, v.Outputs
}

// Options configures Simulate and NewEngine. The zero value is the
// recommended production configuration: automatic backend selection,
// one worker per CPU, fault dropping, the primary view, and the
// process-wide telemetry registry.
type Options struct {
	// Backend selects the simulation algorithm; Auto (zero) picks one.
	Backend Backend
	// Workers is the sharding degree of the parallel-pattern backend:
	// WorkersAuto (0) means runtime.GOMAXPROCS(0), n ≥ 1 is explicit.
	// Every worker count produces bit-identical Results.
	Workers int
	// Drop controls fault dropping; the zero value drops.
	Drop DropMode
	// View selects controllable/observable nets; zero is the primary
	// view.
	View View
	// Metrics receives the run's telemetry; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
	// NoProgress disables the engine's fault.sim.progress tracker (one
	// atomic add per chunk). It exists for the bench-service ablation
	// that measures the instrumentation's cost; production callers
	// leave it false.
	NoProgress bool
}

// workers resolves the Workers field to a concrete count ≥ 1.
func (o Options) workers() int {
	if o.Workers <= WorkersAuto {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}
