package fault

import (
	"fmt"
	"runtime"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Backend selects the fault-simulation algorithm behind Simulate. The
// zero value, Auto, picks one from circuit and workload heuristics;
// the selection table lives in DESIGN.md.
type Backend int

const (
	// Auto picks a backend from fault-count, pattern-count and circuit
	// heuristics: tiny jobs run serially, pattern-starved gradings pack
	// the fault axis, large no-drop gradings trace observability from
	// the good machine, everything else runs on the sharded
	// parallel-pattern engine.
	Auto Backend = iota
	// BackendParallel is the 64-way parallel-pattern single-fault
	// (PPSFP) simulator, sharded across workers on the fault axis.
	BackendParallel
	// BackendDeductive is Armstrong's deductive simulator: one
	// levelized pass per pattern carrying every fault list at once.
	BackendDeductive
	// BackendSerial simulates one good/faulty machine pair per pattern
	// — the paper's "3001 good machine simulations" cost model.
	BackendSerial
	// BackendFaultParallel is the single-pattern multi-fault (SPMF)
	// dual of BackendParallel: up to 64 single-stuck machines are
	// packed per word through per-net injection masks, so one levelized
	// word pass grades a whole fault group against one pattern. The
	// engine shards it across workers on the pattern axis.
	BackendFaultParallel
	// BackendCPT is the critical-path-tracing / observability-
	// propagation backend: per 64-pattern block it computes, from the
	// good-machine pass alone, an observability word for every net
	// (exact on fanout-free regions by chain rule, by explicit
	// complement simulation at reconvergent stems), then grades each
	// fault in O(1) as activation AND observability.
	BackendCPT
)

// String names the backend as accepted by the dftc -engine flag.
func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case BackendParallel:
		return "parallel"
	case BackendDeductive:
		return "deductive"
	case BackendSerial:
		return "serial"
	case BackendFaultParallel:
		return "faultparallel"
	case BackendCPT:
		return "cpt"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// backendNames lists every accepted -engine spelling, for parse errors
// and did-you-mean suggestions.
var backendNames = []string{"auto", "parallel", "deductive", "serial", "faultparallel", "cpt"}

// ParseBackend maps a dftc -engine flag value to a Backend. Unknown
// names get a did-you-mean suggestion when an accepted spelling is
// within edit distance 3, mirroring sim.ParseKernel.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "parallel":
		return BackendParallel, nil
	case "deductive":
		return BackendDeductive, nil
	case "serial":
		return BackendSerial, nil
	case "faultparallel":
		return BackendFaultParallel, nil
	case "cpt":
		return BackendCPT, nil
	}
	want := "want auto, parallel, faultparallel, cpt, deductive or serial"
	if sug := closestBackendName(s); sug != "" {
		return Auto, fmt.Errorf("fault: unknown backend %q (did you mean %q? %s)", s, sug, want)
	}
	return Auto, fmt.Errorf("fault: unknown backend %q (%s)", s, want)
}

// closestBackendName suggests a backend name within edit distance 3.
func closestBackendName(s string) string {
	best, bestDist := "", 4
	for _, n := range backendNames {
		if d := backendEditDistance(s, n); d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

// backendEditDistance is the Levenshtein distance between a and b.
func backendEditDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j] + 1
			if c := cur[j-1] + 1; c < d {
				d = c
			}
			if c := prev[j-1] + cost; c < d {
				d = c
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// DropMode controls fault dropping. The zero value enables dropping —
// the production configuration — so a zero Options is the fast path.
type DropMode int

const (
	// DropOn removes a fault from further simulation after its first
	// detection. Detection outcomes (Detected, DetectedBy) are
	// identical either way; dropping only saves work.
	DropOn DropMode = iota
	// DropOff grades every fault against every pattern — the ablation
	// setting measuring what dropping buys.
	DropOff
)

// WorkersAuto (the Workers zero value) shards the fault list across
// runtime.GOMAXPROCS(0) workers. Results are bit-identical for every
// worker count, so auto is safe as a default.
const WorkersAuto = 0

// View names the nets the tester controls and observes. The zero value
// selects the primary view (pattern bits over c.PIs, detection at
// c.POs); a full-scan view adds the flip-flops on both sides. Every
// input must be a source element (Input or DFF); source elements not
// listed are held at 0, the toolkit's reset state.
type View struct {
	Inputs  []int
	Outputs []int
}

// isPrimary reports whether the view is the zero value.
func (v View) isPrimary() bool { return v.Inputs == nil && v.Outputs == nil }

// resolve returns the concrete input/output net lists for c.
func (v View) resolve(c *logic.Circuit) (inputs, outputs []int) {
	if v.isPrimary() {
		return c.PIs, c.POs
	}
	return v.Inputs, v.Outputs
}

// Resolve is the exported form of resolve: the concrete input and
// output net lists the engine simulates under this view (the zero
// view selects the primary inputs and outputs). Consumers that build
// per-output structures over the same nets the engine observes — the
// diagnose package's full-response dictionary tier — share the
// resolution rule through it.
func (v View) Resolve(c *logic.Circuit) (inputs, outputs []int) {
	return v.resolve(c)
}

// ParallelismAuto (the Parallelism zero value) packs the full 64-bit
// word on the backend's packed axis.
const ParallelismAuto = 0

// Options configures Simulate and NewEngine. The zero value is the
// recommended production configuration: automatic backend selection,
// one worker per CPU, full-word machine packing, fault dropping, the
// primary view, and the process-wide telemetry registry.
//
// The surface has two orthogonal axes: Backend names the algorithm
// (which machines share a word), while Workers and Parallelism size it
// (how many CPU shards, how many machines per word). Every combination
// produces bit-identical Results; the knobs only trade time for memory.
type Options struct {
	// Backend selects the simulation algorithm; Auto (zero) picks one.
	Backend Backend
	// Workers is the engine's sharding degree — over faults for
	// BackendParallel, over patterns for BackendFaultParallel and
	// BackendCPT: WorkersAuto (0) means runtime.GOMAXPROCS(0), n ≥ 1 is
	// explicit. Every worker count produces bit-identical Results.
	Workers int
	// Parallelism is the machine count packed per 64-bit word on the
	// backend's packed axis — fault machines for BackendFaultParallel
	// (1..64). ParallelismAuto (0) packs the full word. Backends whose
	// packed axis is fixed by the word width (parallel, cpt) and the
	// unpacked backends (serial, deductive) ignore it. It exists for
	// the width-ablation benches; production callers leave it 0.
	Parallelism int
	// Drop controls fault dropping; the zero value drops.
	Drop DropMode
	// View selects controllable/observable nets; zero is the primary
	// view.
	View View
	// Metrics receives the run's telemetry; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
	// NoProgress disables the engine's fault.sim.progress tracker (one
	// atomic add per chunk). It exists for the bench-service ablation
	// that measures the instrumentation's cost; production callers
	// leave it false.
	NoProgress bool
}

// workers resolves the Workers field to a concrete count ≥ 1.
func (o Options) workers() int {
	if o.Workers <= WorkersAuto {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// lanes resolves Parallelism to a concrete machines-per-word count in
// [1, 64].
func (o Options) lanes() int {
	if o.Parallelism <= ParallelismAuto || o.Parallelism > 64 {
		return 64
	}
	return o.Parallelism
}
