package fault

import (
	"context"
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
)

// TestDeductiveMatchesParallel is the engine cross-check: the deductive
// simulator must agree with the parallel-pattern simulator fault by
// fault and pattern by pattern.
func TestDeductiveMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []*logic.Circuit{
		circuits.C17(),
		circuits.RippleAdder(4),
		circuits.ParityTree(7),
		circuits.ALU74181(),
		circuits.RandomCircuit(rng, 10, 200, 6, 4),
	}
	for _, c := range cases {
		u := Universe(c)
		patterns := make([][]bool, 100)
		for k := range patterns {
			p := make([]bool, len(c.PIs))
			for i := range p {
				p[i] = rng.Intn(2) == 1
			}
			patterns[k] = p
		}
		ded, err := Simulate(context.Background(), c, u, patterns, Options{Backend: BackendDeductive})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Simulate(context.Background(), c, u, patterns, Options{Backend: BackendParallel, Drop: DropOff})
		if err != nil {
			t.Fatal(err)
		}
		for i := range u {
			if ded.Detected[i] != par.Detected[i] || ded.DetectedBy[i] != par.DetectedBy[i] {
				t.Fatalf("%s: fault %s: deductive (%v,%d) vs parallel (%v,%d)",
					c.Name, u[i].Name(c),
					ded.Detected[i], ded.DetectedBy[i],
					par.Detected[i], par.DetectedBy[i])
			}
		}
	}
}

func TestDeductiveSinglePassLists(t *testing.T) {
	// AND gate, inputs 1,1: both input s-a-0 faults and output s-a-0
	// flip the output; input s-a-1 faults do not.
	c := logic.New("and2")
	a := c.AddInput("a")
	b := c.AddInput("b")
	y := c.AddGate(logic.And, "y", a, b)
	c.MarkOutput(y)
	c.MustFinalize()
	u := Universe(c)
	ds := NewDeductiveSim(c, u)
	det := ds.Pattern([]bool{true, true})
	want := map[Fault]bool{
		{a, Stem, logic.Zero}: true,
		{b, Stem, logic.Zero}: true,
		{y, 0, logic.Zero}:    true,
		{y, 1, logic.Zero}:    true,
		{y, Stem, logic.Zero}: true,
	}
	for i, f := range u {
		got := det[i/64]>>uint(i%64)&1 == 1
		if got != want[f] {
			t.Fatalf("pattern 11: fault %s detected=%v, want %v", f.Name(c), got, want[f])
		}
	}
	// Inputs 0,1: only a s-a-1, y.in0 s-a-1 and y s-a-1 flip.
	det = ds.Pattern([]bool{false, true})
	want = map[Fault]bool{
		{a, Stem, logic.One}: true,
		{y, 0, logic.One}:    true,
		{y, Stem, logic.One}: true,
	}
	for i, f := range u {
		got := det[i/64]>>uint(i%64)&1 == 1
		if got != want[f] {
			t.Fatalf("pattern 01: fault %s detected=%v, want %v", f.Name(c), got, want[f])
		}
	}
}

func TestDeductiveXorParity(t *testing.T) {
	// Reconvergent fanout through XOR: a fault reaching both XOR pins
	// cancels (even parity) — the symmetric-difference rule.
	c := logic.New("xorre")
	a := c.AddInput("a")
	b1 := c.AddGate(logic.Buf, "b1", a)
	b2 := c.AddGate(logic.Buf, "b2", a)
	y := c.AddGate(logic.Xor, "y", b1, b2)
	c.MarkOutput(y)
	c.MustFinalize()
	u := Universe(c)
	ds := NewDeductiveSim(c, u)
	det := ds.Pattern([]bool{true})
	// The PI stem fault flips both XOR pins: not detected.
	for i, f := range u {
		got := det[i/64]>>uint(i%64)&1 == 1
		if f == (Fault{a, Stem, logic.Zero}) && got {
			t.Fatal("reconvergent fault through XOR must cancel")
		}
		// Single-branch faults (buffer outputs) must be detected.
		if f == (Fault{b1, Stem, logic.Zero}) && !got {
			t.Fatal("buffer stem fault must flip exactly one pin and be detected")
		}
	}
}

func BenchmarkDeductiveVsParallel(b *testing.B) {
	c := circuits.ArrayMultiplier(6)
	u := Universe(c)
	rng := rand.New(rand.NewSource(1))
	patterns := make([][]bool, 64)
	for k := range patterns {
		p := make([]bool, len(c.PIs))
		for i := range p {
			p[i] = rng.Intn(2) == 1
		}
		patterns[k] = p
	}
	b.Run("deductive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Simulate(context.Background(), c, u, patterns,
				Options{Backend: BackendDeductive}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Simulate(context.Background(), c, u, patterns,
				Options{Backend: BackendParallel, Drop: DropOff}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
