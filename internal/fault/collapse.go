package fault

import (
	"dft/internal/logic"
)

// Classes is the result of equivalence collapsing: Reps holds one
// representative fault per equivalence class, and ClassOf maps every
// fault in the original universe to its class index in Reps.
type Classes struct {
	Reps    []Fault
	ClassOf map[Fault]int
}

// CollapseEquiv performs structural fault-equivalence collapsing
// ([36],[41],[47] in the paper): faults that provably produce identical
// behavior on every input are merged. The rules are the classical ones:
//
//   - AND:  any input s-a-0 ≡ output s-a-0; NAND: input s-a-0 ≡ output s-a-1
//   - OR:   any input s-a-1 ≡ output s-a-1; NOR:  input s-a-1 ≡ output s-a-0
//   - BUF/DFF: input s-a-v ≡ output s-a-v;  NOT: input s-a-v ≡ output s-a-v̄
//   - a stem fault on a fanout-free, non-output net ≡ the branch fault
//     on its single reader
//
// This typically halves the universe — the paper's "about 3000" from
// 6000 for a 1000-gate network.
func CollapseEquiv(c *logic.Circuit, universe []Fault) Classes {
	parent := map[Fault]Fault{}
	var find func(f Fault) Fault
	find = func(f Fault) Fault {
		p, ok := parent[f]
		if !ok || p == f {
			return f
		}
		r := find(p)
		parent[f] = r
		return r
	}
	union := func(a, b Fault) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	inUniverse := map[Fault]bool{}
	for _, f := range universe {
		inUniverse[f] = true
	}
	mergeIf := func(a, b Fault) {
		if inUniverse[a] && inUniverse[b] {
			union(a, b)
		}
	}

	for id, g := range c.Gates {
		switch g.Type {
		case logic.And:
			for p := range g.Fanin {
				mergeIf(Fault{id, p, logic.Zero}, Fault{id, Stem, logic.Zero})
			}
		case logic.Nand:
			for p := range g.Fanin {
				mergeIf(Fault{id, p, logic.Zero}, Fault{id, Stem, logic.One})
			}
		case logic.Or:
			for p := range g.Fanin {
				mergeIf(Fault{id, p, logic.One}, Fault{id, Stem, logic.One})
			}
		case logic.Nor:
			for p := range g.Fanin {
				mergeIf(Fault{id, p, logic.One}, Fault{id, Stem, logic.Zero})
			}
		case logic.Buf, logic.DFF:
			mergeIf(Fault{id, 0, logic.Zero}, Fault{id, Stem, logic.Zero})
			mergeIf(Fault{id, 0, logic.One}, Fault{id, Stem, logic.One})
		case logic.Not:
			mergeIf(Fault{id, 0, logic.Zero}, Fault{id, Stem, logic.One})
			mergeIf(Fault{id, 0, logic.One}, Fault{id, Stem, logic.Zero})
		}
	}
	// Stem/branch merging on fanout-free internal nets.
	isPO := make([]bool, c.NumNets())
	for _, po := range c.POs {
		isPO[po] = true
	}
	for n, fo := range c.Fanout {
		if len(fo) != 1 || isPO[n] {
			continue
		}
		reader := fo[0]
		for p, src := range c.Gates[reader].Fanin {
			if src == n {
				mergeIf(Fault{n, Stem, logic.Zero}, Fault{reader, p, logic.Zero})
				mergeIf(Fault{n, Stem, logic.One}, Fault{reader, p, logic.One})
			}
		}
	}

	cl := Classes{ClassOf: make(map[Fault]int, len(universe))}
	idx := map[Fault]int{}
	for _, f := range universe {
		r := find(f)
		i, ok := idx[r]
		if !ok {
			i = len(cl.Reps)
			idx[r] = i
			cl.Reps = append(cl.Reps, r)
		}
		cl.ClassOf[f] = i
	}
	return cl
}

// CollapseDominance further prunes a collapsed fault list using gate-
// level dominance ([42] in the paper): a fault that is detected by
// every test for another fault need not be targeted. For an AND gate,
// output s-a-1 dominates each input s-a-1, so the output fault can be
// dropped from the target list (test the inputs and the output comes
// free); dually for OR/NAND/NOR.
//
// The returned list is for test-generation targeting only — unlike
// equivalence classes it does not preserve coverage accounting.
func CollapseDominance(c *logic.Circuit, reps []Fault) []Fault {
	dominated := map[Fault]bool{}
	for id, g := range c.Gates {
		if len(g.Fanin) < 2 {
			continue
		}
		switch g.Type {
		case logic.And:
			dominated[Fault{id, Stem, logic.One}] = true
		case logic.Nand:
			dominated[Fault{id, Stem, logic.Zero}] = true
		case logic.Or:
			dominated[Fault{id, Stem, logic.Zero}] = true
		case logic.Nor:
			dominated[Fault{id, Stem, logic.One}] = true
		}
	}
	var out []Fault
	for _, f := range reps {
		if !dominated[f] {
			out = append(out, f)
		}
	}
	return out
}
