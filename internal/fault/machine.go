package fault

import (
	"fmt"

	"dft/internal/logic"
)

// Machine is a cycle-level simulator of a faulty sequential circuit —
// the "faulty machine" counterpart of sim.Machine, used to exercise
// scan hardware, signature analyzers and self-test structures against
// injected defects.
type Machine struct {
	c       *logic.Circuit
	f       Fault
	state   []bool
	vals    []bool
	scratch []bool
	lastPI  []bool
	dirty   bool
}

// NewMachine creates a faulty machine with all flip-flops reset to 0
// (the stuck value wins immediately for faults on DFF outputs).
func NewMachine(c *logic.Circuit, f Fault) *Machine {
	m := &Machine{
		c:       c,
		f:       f,
		state:   make([]bool, len(c.DFFs)),
		vals:    make([]bool, len(c.Gates)),
		scratch: make([]bool, c.MaxFanin()),
		lastPI:  make([]bool, len(c.PIs)),
		dirty:   true,
	}
	m.forceState()
	return m
}

// forceState pins the state bit corresponding to a DFF fault.
func (m *Machine) forceState() {
	if m.c.Gates[m.f.Gate].Type != logic.DFF {
		return
	}
	for k, id := range m.c.DFFs {
		if id == m.f.Gate {
			m.state[k] = m.f.SA == logic.One
		}
	}
}

// Apply drives the primary inputs and recomputes all nets (fault
// injected) without clocking, returning the primary outputs.
func (m *Machine) Apply(pi []bool) []bool {
	if len(pi) != len(m.lastPI) {
		panic(fmt.Sprintf("fault: Apply with %d values for %d inputs", len(pi), len(m.lastPI)))
	}
	copy(m.lastPI, pi)
	evalFaultyInto(m.c, m.lastPI, m.state, m.f, m.vals, m.scratch)
	m.dirty = false
	out := make([]bool, len(m.c.POs))
	for i, po := range m.c.POs {
		out[i] = m.vals[po]
	}
	return out
}

// Clock latches the D inputs into the flip-flops, respecting faults on
// the storage elements themselves.
func (m *Machine) Clock() {
	if m.dirty {
		evalFaultyInto(m.c, m.lastPI, m.state, m.f, m.vals, m.scratch)
	}
	for k, id := range m.c.DFFs {
		m.state[k] = m.vals[m.c.Gates[id].Fanin[0]]
	}
	m.forceState()
	evalFaultyInto(m.c, m.lastPI, m.state, m.f, m.vals, m.scratch)
	m.dirty = false
}

// Step is Apply followed by Clock.
func (m *Machine) Step(pi []bool) []bool {
	out := m.Apply(pi)
	m.Clock()
	return out
}

// Peek returns the (faulty) value of an arbitrary net.
func (m *Machine) Peek(net int) bool {
	if m.dirty {
		evalFaultyInto(m.c, m.lastPI, m.state, m.f, m.vals, m.scratch)
		m.dirty = false
	}
	return m.vals[net]
}

// State returns a copy of the flip-flop contents.
func (m *Machine) State() []bool { return append([]bool(nil), m.state...) }

// SetState forces the flip-flop contents (fault overrides applied).
func (m *Machine) SetState(s []bool) {
	if len(s) != len(m.state) {
		panic(fmt.Sprintf("fault: SetState with %d values for %d flip-flops", len(s), len(m.state)))
	}
	copy(m.state, s)
	m.forceState()
	m.dirty = true
}
