package fault

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
)

func TestConcurrentMatchesSequential(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	u := Universe(c)
	rng := rand.New(rand.NewSource(8))
	pats := make([][]bool, 200)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	seq := SimulatePatterns(c, u, pats)
	for _, workers := range []int{1, 2, 4, 7} {
		con := SimulateConcurrent(c, u, pats, workers)
		if con.NumCaught != seq.NumCaught {
			t.Fatalf("workers=%d: caught %d vs %d", workers, con.NumCaught, seq.NumCaught)
		}
		for i := range u {
			if con.Detected[i] != seq.Detected[i] || con.DetectedBy[i] != seq.DetectedBy[i] {
				t.Fatalf("workers=%d fault %s: (%v,%d) vs (%v,%d)", workers, u[i].Name(c),
					con.Detected[i], con.DetectedBy[i], seq.Detected[i], seq.DetectedBy[i])
			}
		}
	}
}

func TestConcurrentTinyFaultList(t *testing.T) {
	c := circuits.C17()
	u := Universe(c)[:3]
	pats := [][]bool{{true, true, true, true, true}}
	res := SimulateConcurrent(c, u, pats, 16) // workers > faults
	if len(res.Detected) != 3 {
		t.Fatal("result shape wrong")
	}
}

func BenchmarkConcurrentFaultSim(b *testing.B) {
	c := circuits.ArrayMultiplier(8)
	u := Universe(c)
	rng := rand.New(rand.NewSource(8))
	pats := make([][]bool, 256)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	b.Run("workers1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SimulateConcurrent(c, u, pats, 1)
		}
	})
	b.Run("workers4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SimulateConcurrent(c, u, pats, 4)
		}
	})
}
