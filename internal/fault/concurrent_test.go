package fault

import (
	"context"
	"math/rand"
	"testing"

	"dft/internal/circuits"
)

// TestWorkerCountInvariance pins the engine's sharding contract: the
// result is byte-identical at every worker count, for the fault-axis
// backends (parallel) and the pattern-axis backends (faultparallel,
// cpt) alike.
func TestWorkerCountInvariance(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	u := Universe(c)
	rng := rand.New(rand.NewSource(8))
	pats := make([][]bool, 200)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	for _, backend := range []Backend{BackendParallel, BackendFaultParallel, BackendCPT} {
		seq, err := Simulate(context.Background(), c, u, pats, Options{Backend: backend, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			con, err := Simulate(context.Background(), c, u, pats, Options{Backend: backend, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if con.NumCaught != seq.NumCaught {
				t.Fatalf("%v workers=%d: caught %d vs %d", backend, workers, con.NumCaught, seq.NumCaught)
			}
			for i := range u {
				if con.Detected[i] != seq.Detected[i] || con.DetectedBy[i] != seq.DetectedBy[i] {
					t.Fatalf("%v workers=%d fault %s: (%v,%d) vs (%v,%d)", backend, workers, u[i].Name(c),
						con.Detected[i], con.DetectedBy[i], seq.Detected[i], seq.DetectedBy[i])
				}
			}
		}
	}
}

func TestTinyFaultListManyWorkers(t *testing.T) {
	c := circuits.C17()
	u := Universe(c)[:3]
	pats := [][]bool{{true, true, true, true, true}}
	for _, backend := range []Backend{BackendParallel, BackendFaultParallel, BackendCPT} {
		res, err := Simulate(context.Background(), c, u, pats,
			Options{Backend: backend, Workers: 16}) // workers > faults and > patterns
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Detected) != 3 {
			t.Fatalf("%v: result shape wrong", backend)
		}
	}
}

func BenchmarkConcurrentFaultSim(b *testing.B) {
	c := circuits.ArrayMultiplier(8)
	u := Universe(c)
	rng := rand.New(rand.NewSource(8))
	pats := make([][]bool, 256)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	for _, w := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(context.Background(), c, u, pats,
					Options{Backend: BackendParallel, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
