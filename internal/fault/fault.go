// Package fault implements the single stuck-at fault model of the
// paper: fault universe enumeration over gate pins, structural
// equivalence and dominance collapsing, and fault simulation — serial
// (scalar) and 64-way parallel-pattern single-fault propagation.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"dft/internal/logic"
)

// Fault is a single stuck-at fault on a gate pin. Gate is the element
// index in the circuit; Pin is an input-pin index, or Stem (-1) for the
// fault on the element's output net. SA must be logic.Zero or
// logic.One.
//
// For an Input element only the Stem fault exists. A DFF contributes a
// Stem fault (its output, i.e. present state) and a Pin-0 fault (its D
// input).
type Fault struct {
	Gate int
	Pin  int
	SA   logic.V
}

// Stem is the Pin value denoting an output (stem) fault.
const Stem = -1

// String renders the fault as "net/pin s-a-v" using net IDs.
func (f Fault) String() string {
	if f.Pin == Stem {
		return fmt.Sprintf("g%d s-a-%v", f.Gate, f.SA)
	}
	return fmt.Sprintf("g%d.in%d s-a-%v", f.Gate, f.Pin, f.SA)
}

// ParseFault parses the String rendering back into a Fault: "g12
// s-a-0" for a stem fault, "g12.in3 s-a-1" for an input-branch fault.
// It is the wire format used by the service's inject option and the
// dftc diagnose -inject flag. The gate index is not range-checked
// here — callers with a circuit in hand validate it against
// c.NumNets().
func ParseFault(s string) (Fault, error) {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) != 2 {
		return Fault{}, fmt.Errorf("fault %q: want \"g<gate> s-a-<v>\" or \"g<gate>.in<pin> s-a-<v>\"", s)
	}
	var sa logic.V
	switch fields[1] {
	case "s-a-0":
		sa = logic.Zero
	case "s-a-1":
		sa = logic.One
	default:
		return Fault{}, fmt.Errorf("fault %q: bad stuck value %q (want s-a-0 or s-a-1)", s, fields[1])
	}
	site := fields[0]
	if !strings.HasPrefix(site, "g") {
		return Fault{}, fmt.Errorf("fault %q: site %q must start with g", s, site)
	}
	site = site[1:]
	pin := Stem
	if dot := strings.Index(site, ".in"); dot >= 0 {
		p, err := strconv.Atoi(site[dot+3:])
		if err != nil || p < 0 {
			return Fault{}, fmt.Errorf("fault %q: bad pin index %q", s, site[dot+3:])
		}
		pin = p
		site = site[:dot]
	}
	gate, err := strconv.Atoi(site)
	if err != nil || gate < 0 {
		return Fault{}, fmt.Errorf("fault %q: bad gate index %q", s, site)
	}
	return Fault{Gate: gate, Pin: pin, SA: sa}, nil
}

// Validate range-checks a parsed fault against the circuit: the gate
// must exist and a branch pin must name one of its fanin operands.
func (f Fault) Validate(c *logic.Circuit) error {
	if f.Gate < 0 || f.Gate >= c.NumNets() {
		return fmt.Errorf("fault %s: gate out of range (circuit has %d nets)", f, c.NumNets())
	}
	if f.Pin != Stem && (f.Pin < 0 || f.Pin >= len(c.Gates[f.Gate].Fanin)) {
		return fmt.Errorf("fault %s: pin out of range (gate has %d inputs)", f, len(c.Gates[f.Gate].Fanin))
	}
	return nil
}

// Name renders the fault with circuit net names, e.g. "G16 s-a-1" or
// "G22.in0(G10) s-a-0".
func (f Fault) Name(c *logic.Circuit) string {
	if f.Pin == Stem {
		return fmt.Sprintf("%s s-a-%v", c.NameOf(f.Gate), f.SA)
	}
	src := c.Gates[f.Gate].Fanin[f.Pin]
	return fmt.Sprintf("%s.in%d(%s) s-a-%v", c.NameOf(f.Gate), f.Pin, c.NameOf(src), f.SA)
}

// Site returns the net whose value the fault corrupts: the gate's own
// net for a stem fault, or the source net for an input-branch fault
// (the corruption is seen only by that branch).
func (f Fault) Site(c *logic.Circuit) int {
	if f.Pin == Stem {
		return f.Gate
	}
	return c.Gates[f.Gate].Fanin[f.Pin]
}

// Universe enumerates the full single stuck-at fault universe: two
// faults (s-a-0, s-a-1) on every gate output and every gate input pin.
// For a circuit of G two-input gates this yields 6·G faults, matching
// the paper's "1000 two-input gates → 6000 faults" accounting.
func Universe(c *logic.Circuit) []Fault {
	var fs []Fault
	for id, g := range c.Gates {
		fs = append(fs, Fault{id, Stem, logic.Zero}, Fault{id, Stem, logic.One})
		if g.Type == logic.Input {
			continue
		}
		for p := range g.Fanin {
			fs = append(fs, Fault{id, p, logic.Zero}, Fault{id, p, logic.One})
		}
	}
	return fs
}

// CombinationalUniverse is Universe restricted to faults inside the
// combinational core: faults on DFF pins are mapped onto the pseudo
// PI/PO boundary and retained, so the set is the same as Universe for
// combinational circuits.
func CombinationalUniverse(c *logic.Circuit) []Fault {
	return Universe(c)
}
