package fault

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dft/internal/circuits"
)

func randomDetailPatterns(nIn, n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		p := make([]bool, nIn)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	return pats
}

// TestRunDetailMatchesSerialOracle checks every backend's detail rows
// bit-for-bit against a per-pattern ParallelSim oracle on c17.
func TestRunDetailMatchesSerialOracle(t *testing.T) {
	c := circuits.C17()
	faults := Universe(c)
	pats := randomDetailPatterns(len(c.PIs), 100, 7)

	// Oracle: one 1-pattern block per pattern.
	ps := NewParallelSim(c)
	want := make([][]uint64, len(faults))
	for fi := range want {
		want[fi] = make([]uint64, detailWords(len(pats)))
	}
	packed := PackPatternSet(len(c.PIs), pats)
	for p := range pats {
		words := make([]uint64, len(c.PIs))
		for j, b := range pats[p] {
			if b {
				words[j] = 1
			}
		}
		ps.LoadPackedBlock(words, 1)
		for fi, f := range faults {
			if ps.FaultMask(f)&1 != 0 {
				want[fi][p/64] |= 1 << uint(p%64)
			}
		}
	}

	for _, be := range []Backend{BackendParallel, BackendFaultParallel, BackendCPT, BackendSerial} {
		t.Run(be.String(), func(t *testing.T) {
			e := NewEngine(c, Options{Backend: be, Workers: 2})
			dr, err := e.RunDetail(context.Background(), faults, packed)
			if err != nil {
				t.Fatal(err)
			}
			for fi := range faults {
				for w := range want[fi] {
					if dr.Detect[fi][w] != want[fi][w] {
						t.Fatalf("fault %s word %d: got %016x want %016x",
							faults[fi].Name(c), w, dr.Detect[fi][w], want[fi][w])
					}
				}
			}
		})
	}
}

// TestRunDetailWorkerInvariance: rows are byte-identical across every
// backend × worker-count combination, including partial tail blocks.
func TestRunDetailWorkerInvariance(t *testing.T) {
	c := circuits.ArrayMultiplier(3)
	faults := Universe(c)
	pats := randomDetailPatterns(len(c.PIs), 130, 9) // 2 full blocks + 2-pattern tail
	packed := PackPatternSet(len(c.PIs), pats)

	ref, err := NewEngine(c, Options{Backend: BackendParallel, Workers: 1}).
		RunDetail(context.Background(), faults, packed)
	if err != nil {
		t.Fatal(err)
	}
	for _, be := range []Backend{BackendParallel, BackendFaultParallel, BackendCPT} {
		for _, w := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/w%d", be, w), func(t *testing.T) {
				dr, err := NewEngine(c, Options{Backend: be, Workers: w}).
					RunDetail(context.Background(), faults, packed)
				if err != nil {
					t.Fatal(err)
				}
				for fi := range faults {
					for wi := range ref.Detect[fi] {
						if dr.Detect[fi][wi] != ref.Detect[fi][wi] {
							t.Fatalf("fault %d word %d differs from reference", fi, wi)
						}
					}
				}
			})
		}
	}
}

// TestDetailResultFold: the folded Result agrees with a drop-off
// Simulate on first-detection indices.
func TestDetailResultFold(t *testing.T) {
	c := circuits.C17()
	faults := Universe(c)
	pats := randomDetailPatterns(len(c.PIs), 64, 3)
	dr, err := SimulateDetail(context.Background(), c, faults, pats, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(context.Background(), c, faults, pats, Options{Drop: DropOff})
	if err != nil {
		t.Fatal(err)
	}
	got := dr.Result()
	if got.NumCaught != want.NumCaught {
		t.Fatalf("caught %d, want %d", got.NumCaught, want.NumCaught)
	}
	for fi := range faults {
		if got.Detected[fi] != want.Detected[fi] {
			t.Fatalf("fault %d detected %v, want %v", fi, got.Detected[fi], want.Detected[fi])
		}
		if got.Detected[fi] && got.DetectedBy[fi] != want.DetectedBy[fi] {
			t.Fatalf("fault %d first detect %d, want %d", fi, got.DetectedBy[fi], want.DetectedBy[fi])
		}
		if got.Detected[fi] && dr.FirstDetect(fi) != got.DetectedBy[fi] {
			t.Fatalf("FirstDetect disagrees with folded result for fault %d", fi)
		}
	}
}

func TestRunDetailCancellation(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	faults := Universe(c)
	pats := randomDetailPatterns(len(c.PIs), 256, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, be := range []Backend{BackendParallel, BackendFaultParallel, BackendCPT} {
		if _, err := SimulateDetail(ctx, c, faults, pats, Options{Backend: be}); err == nil {
			t.Fatalf("%v: cancelled detail run returned no error", be)
		}
	}
}

func TestParseFault(t *testing.T) {
	cases := []struct {
		in   string
		want Fault
		ok   bool
	}{
		{"g12 s-a-0", Fault{12, Stem, 0}, true},
		{"g12.in3 s-a-1", Fault{12, 3, 1}, true},
		{"  g0 s-a-1  ", Fault{0, Stem, 1}, true},
		{"g12", Fault{}, false},
		{"g12 s-a-2", Fault{}, false},
		{"x12 s-a-0", Fault{}, false},
		{"g12.inX s-a-0", Fault{}, false},
		{"g-3 s-a-0", Fault{}, false},
	}
	for _, tc := range cases {
		f, err := ParseFault(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseFault(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && f != tc.want {
			t.Fatalf("ParseFault(%q) = %+v, want %+v", tc.in, f, tc.want)
		}
		if tc.ok {
			back, err := ParseFault(f.String())
			if err != nil || back != f {
				t.Fatalf("String round-trip of %+v failed: %+v %v", f, back, err)
			}
		}
	}
	c := circuits.C17()
	if err := (Fault{Gate: 3, Pin: Stem}).Validate(c); err != nil {
		t.Fatal(err)
	}
	if err := (Fault{Gate: 99, Pin: Stem}).Validate(c); err == nil {
		t.Fatal("out-of-range gate validated")
	}
	if err := (Fault{Gate: 0, Pin: 5}).Validate(c); err == nil {
		t.Fatal("out-of-range pin validated")
	}
}
