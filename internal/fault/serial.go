package fault

import (
	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// EvalFaulty computes all net values of the faulty machine for one
// pattern: a full levelized pass with the fault injected at its site.
// pi and state follow the same conventions as sim.Eval.
func EvalFaulty(c *logic.Circuit, pi, state []bool, f Fault) []bool {
	vals := make([]bool, len(c.Gates))
	evalFaultyInto(c, pi, state, f, vals, make([]bool, c.MaxFanin()))
	return vals
}

// EvalFaultyInto is EvalFaulty into caller-provided storage, for
// session loops that drive a faulty network once per clock. scratch
// must have capacity for the widest gate fanin.
func EvalFaultyInto(c *logic.Circuit, pi, state []bool, f Fault, vals, scratch []bool) {
	evalFaultyInto(c, pi, state, f, vals, scratch)
}

func evalFaultyInto(c *logic.Circuit, pi, state []bool, f Fault, vals, scratch []bool) {
	stuck := f.SA == logic.One
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range c.DFFs {
		vals[id] = state[i]
	}
	if f.Pin == Stem && !c.Gates[f.Gate].Type.IsCombinational() {
		vals[f.Gate] = stuck
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = vals[src]
		}
		if f.Pin != Stem && f.Gate == id {
			in[f.Pin] = stuck
		}
		v := g.Type.EvalBool(in)
		if f.Pin == Stem && f.Gate == id {
			v = stuck
		}
		vals[id] = v
	}
}

// DetectsCombinational reports whether the pattern detects the fault on
// a combinational circuit (or the combinational core of a scan design):
// some primary output differs between good and faulty machine.
func DetectsCombinational(c *logic.Circuit, pi []bool, f Fault) bool {
	state := make([]bool, len(c.DFFs))
	return detectsWithState(c, pi, state, f)
}

// cSerialEvals counts full-circuit machine passes, the paper's serial
// simulation unit of work ("3001 good machine simulations").
var cSerialEvals = telemetry.Default().Counter("fault.serial.evals")

func detectsWithState(c *logic.Circuit, pi, state []bool, f Fault) bool {
	// One good-machine pass plus one faulty-machine pass.
	cSerialEvals.Add(2)
	good := make([]bool, len(c.Gates))
	bad := make([]bool, len(c.Gates))
	scratch := make([]bool, c.MaxFanin())
	goodEval(c, pi, state, good, scratch)
	evalFaultyInto(c, pi, state, f, bad, scratch)
	for _, po := range c.POs {
		if good[po] != bad[po] {
			return true
		}
	}
	return false
}

// goodEval is the serial good-machine pass; it rides the compiled
// kernel when active (faulty passes stay interpreted for the
// injection hooks).
func goodEval(c *logic.Circuit, pi, state, vals, scratch []bool) {
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range c.DFFs {
		vals[id] = state[i]
	}
	if p := sim.ActiveProgram(c); p != nil {
		p.ExecBool(vals)
		return
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = vals[src]
		}
		vals[id] = g.Type.EvalBool(in)
	}
}

// SequentialResult reports sequential fault simulation outcomes.
type SequentialResult struct {
	Faults    []Fault
	Detected  []bool
	DetectCyc []int // cycle of first detection, -1 if undetected
	NumCycles int
	NumFaults int
	NumCaught int
}

// Coverage returns detected/total.
func (r *SequentialResult) Coverage() float64 {
	if r.NumFaults == 0 {
		return 0
	}
	return float64(r.NumCaught) / float64(r.NumFaults)
}

// SimulateSequence performs serial fault simulation of a sequential
// circuit over an input sequence: for every fault, the faulty machine
// is simulated cycle-by-cycle alongside the good machine (both starting
// from the all-zero state), and the fault is detected on the first
// cycle where a primary output differs. This is the paper's "3001 good
// machine simulations" model of fault simulation cost, run serially.
func SimulateSequence(c *logic.Circuit, faults []Fault, seq [][]bool) *SequentialResult {
	defer telemetry.Default().Timer("fault.sim.serial").Time()()
	machineEvals := int64(len(seq)) // the shared good-machine trajectory
	defer func() { cSerialEvals.Add(machineEvals) }()
	res := &SequentialResult{
		Faults:    faults,
		Detected:  make([]bool, len(faults)),
		DetectCyc: make([]int, len(faults)),
		NumCycles: len(seq),
		NumFaults: len(faults),
	}
	for i := range res.DetectCyc {
		res.DetectCyc[i] = -1
	}
	nd := len(c.DFFs)
	goodVals := make([]bool, len(c.Gates))
	badVals := make([]bool, len(c.Gates))
	scratch := make([]bool, c.MaxFanin())

	// Good machine trajectory (states per cycle) computed once.
	goodStates := make([][]bool, len(seq)+1)
	goodStates[0] = make([]bool, nd)
	goodOuts := make([][]bool, len(seq))
	for t, pat := range seq {
		goodEval(c, pat, goodStates[t], goodVals, scratch)
		out := make([]bool, len(c.POs))
		for k, po := range c.POs {
			out[k] = goodVals[po]
		}
		goodOuts[t] = out
		next := make([]bool, nd)
		for k, id := range c.DFFs {
			next[k] = goodVals[c.Gates[id].Fanin[0]]
		}
		goodStates[t+1] = next
	}

	badState := make([]bool, nd)
	for fi, f := range faults {
		for k := range badState {
			badState[k] = false
		}
		for t, pat := range seq {
			evalFaultyInto(c, pat, badState, f, badVals, scratch)
			machineEvals++
			for k, po := range c.POs {
				if badVals[po] != goodOuts[t][k] {
					res.Detected[fi] = true
					res.DetectCyc[fi] = t
					break
				}
			}
			if res.Detected[fi] {
				break
			}
			for k, id := range c.DFFs {
				badState[k] = badVals[c.Gates[id].Fanin[0]]
			}
			// Faults on the DFF itself persist across the clock edge: a
			// stem fault keeps the output stuck, and a D-input fault
			// corrupts the value being captured.
			if c.Gates[f.Gate].Type == logic.DFF {
				for k, id := range c.DFFs {
					if id == f.Gate {
						badState[k] = f.SA == logic.One
					}
				}
			}
		}
		if res.Detected[fi] {
			res.NumCaught++
		}
	}
	return res
}
