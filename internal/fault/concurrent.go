package fault

import (
	"runtime"
	"sync"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// SimulateConcurrent fault-simulates the pattern set with the fault
// list sharded across worker goroutines, each running its own
// parallel-pattern engine. Semantics match SimulatePatterns (with
// dropping, first-detection indices); workers ≤ 0 selects GOMAXPROCS.
//
// Sharding by fault keeps workers fully independent — each re-runs the
// cheap good-machine pass per block but shares nothing, so the speedup
// on fault-dominated workloads approaches the worker count.
func SimulateConcurrent(c *logic.Circuit, faults []Fault, patterns [][]bool, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return SimulatePatterns(c, faults, patterns)
	}
	reg := telemetry.Default()
	defer reg.Timer("fault.sim.concurrent").Time()()
	reg.Gauge("fault.sim.workers").Set(int64(workers))
	res := &Result{
		Faults:     faults,
		Detected:   make([]bool, len(faults)),
		DetectedBy: make([]int, len(faults)),
		NumPats:    len(patterns),
	}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		lo := w * len(faults) / workers
		hi := (w + 1) * len(faults) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			shard := runBlocks(NewParallelSim(c), faults[lo:hi], patterns, true)
			mu.Lock()
			for i := lo; i < hi; i++ {
				res.Detected[i] = shard.Detected[i-lo]
				res.DetectedBy[i] = shard.DetectedBy[i-lo]
				if shard.Detected[i-lo] {
					res.NumCaught++
				}
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return res
}
