package fault

import (
	"context"

	"dft/internal/logic"
)

// SimulateConcurrent fault-simulates the pattern set with the fault
// list sharded across worker goroutines. Semantics match
// SimulatePatterns (dropping, first-detection indices) for every
// worker count; workers ≤ 0 selects GOMAXPROCS.
//
// Deprecated: use Simulate with Options{Workers: n}; the engine pools
// per-worker simulator state across runs and flushes telemetry per
// worker, which this wrapper's original implementation did not.
func SimulateConcurrent(c *logic.Circuit, faults []Fault, patterns [][]bool, workers int) *Result {
	if workers < 0 {
		workers = WorkersAuto
	}
	res, _ := Simulate(context.Background(), c, faults, patterns,
		Options{Backend: BackendParallel, Workers: workers})
	return res
}
