package fault

import (
	"context"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// Single-pattern multi-fault (SPMF) backend: the dual of the PPSFP
// simulator. Where BackendParallel packs 64 patterns per word and
// injects one fault at a time, BackendFaultParallel packs up to 64
// single-stuck fault machines per word — bit j of every net word is
// fault machine j — and replays them against one pattern per levelized
// pass. Injection is a per-net mask pair (mask = lanes owned by faults
// at this site, or = lanes stuck at 1) applied mid-pass, so machines
// stay independent: forcing lane j at one site never disturbs lane k.
//
// The engine shards this backend over the pattern axis: injection
// structures are a pure function of the fault list, built once per run
// and shared read-only, while each worker claims ascending pattern
// chunks and grades every fault group against them. Workers record
// first detections locally and the engine min-merges, so results are
// bit-identical at every worker count.

// spmfInj is one injection site inside a fault group: force the lanes
// in mask to the bits in or (or ⊆ mask) at order position pos. Stem
// entries force a net's word after evaluation; branch entries force
// operand pin of the gate at pos before evaluation; source entries
// (pos < 0) force a source element's word at load.
type spmfInj struct {
	pos  int32
	pin  int32 // -1 for stem entries
	net  int32
	mask uint64
	or   uint64
}

// spmfGroup is one word of fault machines: lane j grades fault
// faults[base+j].
type spmfGroup struct {
	base     int
	all      uint64 // lanes carrying a fault (low len bits)
	srcStems []spmfInj
	stems    []spmfInj
	branches []spmfInj
}

// buildSPMFGroups packs the fault list into groups of up to lanes
// machines per word. Faults on source elements (input stems, DFF stems
// and D-pin faults, which the element passes through) pin the source
// word; stem faults on combinational gates pin the gate's output word;
// branch faults force one operand pin of their gate.
func buildSPMFGroups(c *logic.Circuit, faults []Fault, lanes int) []spmfGroup {
	posInOrder := make([]int32, c.NumNets())
	for i := range posInOrder {
		posInOrder[i] = -1
	}
	for i, id := range c.Order {
		posInOrder[id] = int32(i)
	}
	groups := make([]spmfGroup, 0, (len(faults)+lanes-1)/lanes)
	for base := 0; base < len(faults); base += lanes {
		hi := base + lanes
		if hi > len(faults) {
			hi = len(faults)
		}
		g := spmfGroup{base: base, all: ^uint64(0)}
		if n := hi - base; n < 64 {
			g.all = 1<<uint(n) - 1
		}
		for j, f := range faults[base:hi] {
			bit := uint64(1) << uint(j)
			var or uint64
			if f.SA == logic.One {
				or = bit
			}
			switch {
			case !c.Gates[f.Gate].Type.IsCombinational():
				g.srcStems = append(g.srcStems, spmfInj{pos: -1, pin: -1, net: int32(f.Gate), mask: bit, or: or})
			case f.Pin == Stem:
				g.stems = append(g.stems, spmfInj{pos: posInOrder[f.Gate], pin: -1, net: int32(f.Gate), mask: bit, or: or})
			default:
				g.branches = append(g.branches, spmfInj{pos: posInOrder[f.Gate], pin: int32(f.Pin), net: int32(f.Gate), mask: bit, or: or})
			}
		}
		sortInj(g.stems)
		sortInj(g.branches)
		groups = append(groups, g)
	}
	return groups
}

// sortInj orders injection entries by pass position (then pin), and
// merges entries sharing a site so the pass applies each site once.
func sortInj(inj []spmfInj) {
	sort.Slice(inj, func(i, j int) bool {
		if inj[i].pos != inj[j].pos {
			return inj[i].pos < inj[j].pos
		}
		return inj[i].pin < inj[j].pin
	})
	wr := 0
	for i := 1; i < len(inj); i++ {
		if inj[i].pos == inj[wr].pos && inj[i].pin == inj[wr].pin {
			inj[wr].mask |= inj[i].mask
			inj[wr].or |= inj[i].or
			continue
		}
		wr++
		inj[wr] = inj[i]
	}
	if len(inj) > 0 {
		inj = inj[:wr+1]
	}
}

// spmfSim is one worker's SPMF state: the scalar good machine for the
// current pattern and the word-per-net fault-machine storage.
type spmfSim struct {
	c       *logic.Circuit
	inputs  []int
	outputs []int
	prog    *sim.Program
	good    []bool
	vals    []uint64
	scratch []uint64
	scratchB []bool

	nPasses int64 // faulty word passes
	nGood   int64 // scalar good-machine passes
}

func newSPMFSim(c *logic.Circuit, inputs, outputs []int) *spmfSim {
	for _, in := range inputs {
		if c.Gates[in].Type.IsCombinational() {
			panic("fault: view input " + c.NameOf(in) + " is not a source element")
		}
	}
	return &spmfSim{
		c:        c,
		inputs:   inputs,
		outputs:  outputs,
		prog:     sim.ActiveProgram(c),
		good:     make([]bool, c.NumNets()),
		vals:     make([]uint64, c.NumNets()),
		scratch:  make([]uint64, c.MaxFanin()),
		scratchB: make([]bool, c.MaxFanin()),
	}
}

// loadGood computes the scalar good machine for one pattern under the
// view conventions (unlisted sources held at 0).
func (s *spmfSim) loadGood(p []bool) {
	c := s.c
	for _, pi := range c.PIs {
		s.good[pi] = false
	}
	for _, d := range c.DFFs {
		s.good[d] = false
	}
	for i, b := range p {
		s.good[s.inputs[i]] = b
	}
	if s.prog != nil {
		s.prog.ExecBool(s.good)
	} else {
		for _, id := range c.Order {
			g := &c.Gates[id]
			in := s.scratchB[:len(g.Fanin)]
			for i, src := range g.Fanin {
				in[i] = s.good[src]
			}
			s.good[id] = g.Type.EvalBool(in)
		}
	}
	s.nGood++
}

// broadcast widens a scalar bit to all 64 lanes.
func broadcast(b bool) uint64 {
	if b {
		return ^uint64(0)
	}
	return 0
}

// gradeGroup runs one levelized word pass with grp's machines injected
// against the loaded pattern and returns the detection word: bit j set
// when machine j differs from the good machine at some view output.
func (s *spmfSim) gradeGroup(grp *spmfGroup) uint64 {
	c := s.c
	vals := s.vals
	for _, pi := range c.PIs {
		vals[pi] = broadcast(s.good[pi])
	}
	for _, d := range c.DFFs {
		vals[d] = broadcast(s.good[d])
	}
	for _, inj := range grp.srcStems {
		vals[inj.net] = vals[inj.net]&^inj.mask | inj.or
	}
	bp, sp := 0, 0
	branches, stems := grp.branches, grp.stems
	for oi, id := range c.Order {
		g := &c.Gates[id]
		in := s.scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = vals[src]
		}
		for bp < len(branches) && int(branches[bp].pos) == oi {
			b := &branches[bp]
			in[b.pin] = in[b.pin]&^b.mask | b.or
			bp++
		}
		v := g.Type.EvalWord(in)
		for sp < len(stems) && int(stems[sp].pos) == oi {
			st := &stems[sp]
			v = v&^st.mask | st.or
			sp++
		}
		vals[id] = v
	}
	var det uint64
	for _, o := range s.outputs {
		det |= vals[o] ^ broadcast(s.good[o])
	}
	s.nPasses++
	return det & grp.all
}

// spmfChunk sizes the pattern-axis dynamic queue: ~4 chunks per worker,
// with a floor of one pattern (SPMF's home turf is pattern-starved
// workloads where even single patterns carry a full fault sweep).
func spmfChunk(nPats, workers int) int {
	chunk := (nPats + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// runFaultParallel is the engine's SPMF path. Faults are packed into
// word groups once; workers claim ascending pattern chunks through an
// atomic cursor and grade every group against each of their patterns,
// recording first detections in worker-local arrays that are min-merged
// into the Result — the pattern axis has no disjoint-write invariant to
// lean on. Dropping is tracked per worker (a group is skipped once all
// its lanes have detected locally); outcomes are identical either way.
func (e *Engine) runFaultParallel(ctx context.Context, faults []Fault, patterns [][]bool) (*Result, error) {
	reg := e.reg
	nPats := len(patterns)
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "fault.sim.spmf")
	span.SetAttr("faults", strconv.Itoa(len(faults)))
	span.SetAttr("patterns", strconv.Itoa(nPats))
	defer span.End()
	res := newResult(faults, nPats)
	if len(faults) == 0 || nPats == 0 {
		return res, nil
	}
	lanes := e.opts.lanes()
	groups := buildSPMFGroups(e.c, faults, lanes)
	reg.Counter("fault.spmf.groups").Add(int64(len(groups)))
	span.SetAttr("groups", strconv.Itoa(len(groups)))
	var prog *telemetry.Progress
	if !e.opts.NoProgress {
		prog = reg.Progress("fault.sim.progress")
		prog.AddTotal(int64(nPats))
	}
	w := e.workers
	if w > nPats {
		w = nPats
	}
	span.SetAttr("workers", strconv.Itoa(w))
	drop := e.drop()

	if w <= 1 {
		s := e.spmfSim(0)
		err := spmfLoop(ctx, s, groups, patterns, 0, nPats, drop, res.Detected, res.DetectedBy, prog)
		reg.Counter("fault.spmf.word_passes").Add(s.nPasses)
		reg.Counter("fault.spmf.good_passes").Add(s.nGood)
		s.nPasses, s.nGood = 0, 0
		if err != nil {
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
		for _, d := range res.Detected {
			if d {
				res.NumCaught++
			}
		}
		reg.Counter("fault.sim.patterns").Add(int64(nPats))
		reg.Counter("fault.sim.detected").Add(int64(res.NumCaught))
		return res, nil
	}

	reg.Gauge("fault.sim.workers").Set(int64(w))
	reg.Counter("fault.engine.runs").Inc()
	chunk := spmfChunk(nPats, w)
	shardHist := reg.Histogram("fault.engine.shard_patterns")
	var cursor, shards atomic.Int64
	errs := make([]error, w)
	locals := make([][]int, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			s := e.spmfSim(wi)
			det := make([]bool, len(faults))
			detBy := make([]int, len(faults))
			for i := range detBy {
				detBy[i] = -1
			}
			locals[wi] = detBy
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= nPats {
					break
				}
				if err := ctx.Err(); err != nil {
					errs[wi] = err
					break
				}
				hi := lo + chunk
				if hi > nPats {
					hi = nPats
				}
				shards.Add(1)
				shardHist.Observe(int64(hi - lo))
				if err := spmfLoop(ctx, s, groups, patterns, lo, hi, drop, det, detBy, prog); err != nil {
					errs[wi] = err
					break
				}
			}
			reg.Counter("fault.spmf.word_passes").Add(s.nPasses)
			reg.Counter("fault.spmf.good_passes").Add(s.nGood)
			s.nPasses, s.nGood = 0, 0
		}(wi)
	}
	wg.Wait()
	reg.Counter("fault.engine.shards").Add(shards.Load())
	for _, err := range errs {
		if err != nil {
			reg.Counter("fault.engine.cancelled").Inc()
			return nil, err
		}
	}
	mergeDetections(res, locals)
	reg.Counter("fault.sim.patterns").Add(int64(nPats))
	reg.Counter("fault.sim.detected").Add(int64(res.NumCaught))
	return res, nil
}

// spmfLoop grades every fault group against patterns [lo, hi) on s,
// recording first detections (within the caller's pattern view) into
// detected/detectedBy. seen tracks lanes already recorded so no-drop
// mode re-grades without re-recording; with drop a fully-detected
// group is skipped. Cancellation is checked between patterns.
func spmfLoop(ctx context.Context, s *spmfSim, groups []spmfGroup, patterns [][]bool, lo, hi int, drop bool,
	detected []bool, detectedBy []int, prog *telemetry.Progress) error {
	// seen persists across the worker's chunks via detectedBy: lanes
	// recorded earlier keep their first (lower) pattern index because
	// chunks ascend.
	for p := lo; p < hi; p++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.loadGood(patterns[p])
		for gi := range groups {
			grp := &groups[gi]
			var seen uint64
			n := bits.OnesCount64(grp.all)
			for j := 0; j < n; j++ {
				if detectedBy[grp.base+j] >= 0 {
					seen |= 1 << uint(j)
				}
			}
			if drop && seen == grp.all {
				continue
			}
			det := s.gradeGroup(grp) &^ seen
			for d := det; d != 0; d &= d - 1 {
				fi := grp.base + bits.TrailingZeros64(d)
				detected[fi] = true
				detectedBy[fi] = p
			}
		}
		if prog != nil {
			prog.Inc()
		}
	}
	return nil
}

// mergeDetections folds worker-local first-detection arrays into res
// by per-fault minimum, preserving the global first-pattern semantics.
func mergeDetections(res *Result, locals [][]int) {
	for _, detBy := range locals {
		if detBy == nil {
			continue
		}
		for fi, p := range detBy {
			if p < 0 {
				continue
			}
			if !res.Detected[fi] || p < res.DetectedBy[fi] {
				res.Detected[fi] = true
				res.DetectedBy[fi] = p
			}
		}
	}
	res.NumCaught = 0
	for _, d := range res.Detected {
		if d {
			res.NumCaught++
		}
	}
}
