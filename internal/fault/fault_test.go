package fault

import (
	"context"
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/sim"
)

// mustSimulate runs Simulate with the given options, failing the test
// on error — the migration shim for the removed convenience wrappers.
func mustSimulate(tb testing.TB, c *logic.Circuit, faults []Fault, patterns [][]bool, opts Options) *Result {
	tb.Helper()
	res, err := Simulate(context.Background(), c, faults, patterns, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// andGate builds the paper's Fig. 1 circuit: a single 2-input AND.
func andGate() *logic.Circuit {
	c := logic.New("and2")
	a := c.AddInput("A")
	b := c.AddInput("B")
	c.MarkOutput(c.AddGate(logic.And, "C", a, b))
	return c.MustFinalize()
}

// TestFig1StuckAt reproduces the paper's Fig. 1: pattern A=0,B=1 is a
// test for "A s-a-1" because the good machine outputs 0 and the faulty
// machine outputs 1.
func TestFig1StuckAt(t *testing.T) {
	c := andGate()
	and, _ := c.NetByName("C")
	f := Fault{Gate: and, Pin: 0, SA: logic.One} // input A s-a-1
	pattern := []bool{false, true}               // A=0, B=1
	good := sim.Eval(c, pattern, nil)
	bad := EvalFaulty(c, pattern, nil, f)
	if good[and] != false || bad[and] != true {
		t.Fatalf("good=%v bad=%v; want 0/1", good[and], bad[and])
	}
	if !DetectsCombinational(c, pattern, f) {
		t.Fatal("pattern 01 must detect A s-a-1")
	}
	// A=1,B=1 is NOT a test: both machines output 1.
	if DetectsCombinational(c, []bool{true, true}, f) {
		t.Fatal("pattern 11 must not detect A s-a-1")
	}
}

// TestUniverseCount checks the paper's accounting: a network of G
// 2-input gates has 6G pin faults (2 inputs + 1 output, two polarities)
// plus 2 per primary input.
func TestUniverseCount(t *testing.T) {
	c := circuits.C17()
	fs := Universe(c)
	want := 6*6 + 2*5 // 6 NANDs + 5 PIs
	if len(fs) != want {
		t.Fatalf("universe size %d, want %d", len(fs), want)
	}
}

func TestCollapseEquivC17(t *testing.T) {
	c := circuits.C17()
	u := Universe(c)
	cl := CollapseEquiv(c, u)
	if len(cl.Reps) >= len(u) {
		t.Fatalf("collapsing did not reduce: %d -> %d", len(u), len(cl.Reps))
	}
	// Every fault maps to a class whose representative exists.
	for _, f := range u {
		i, ok := cl.ClassOf[f]
		if !ok || i < 0 || i >= len(cl.Reps) {
			t.Fatalf("fault %v unmapped", f)
		}
	}
	// Known equivalence on c17: NAND input s-a-0 ≡ output s-a-1.
	g22, _ := c.NetByName("G22")
	a := cl.ClassOf[Fault{g22, 0, logic.Zero}]
	b := cl.ClassOf[Fault{g22, Stem, logic.One}]
	if a != b {
		t.Error("NAND in s-a-0 and out s-a-1 not merged")
	}
	// And s-a-1 on distinct inputs must NOT merge.
	if cl.ClassOf[Fault{g22, 0, logic.One}] == cl.ClassOf[Fault{g22, 1, logic.One}] {
		t.Error("distinct NAND input s-a-1 faults wrongly merged")
	}
}

// TestCollapseEquivalencePreservesDetection is the key property: any
// pattern detects a fault iff it detects the fault's class
// representative.
func TestCollapseEquivalencePreservesDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []*logic.Circuit{
		circuits.C17(),
		circuits.RippleAdder(3),
		circuits.RandomCircuit(rng, 8, 60, 4, 4),
	}
	for _, c := range cases {
		u := Universe(c)
		cl := CollapseEquiv(c, u)
		for trial := 0; trial < 40; trial++ {
			pat := make([]bool, len(c.PIs))
			for i := range pat {
				pat[i] = rng.Intn(2) == 1
			}
			for _, f := range u {
				rep := cl.Reps[cl.ClassOf[f]]
				if rep == f {
					continue
				}
				df := DetectsCombinational(c, pat, f)
				dr := DetectsCombinational(c, pat, rep)
				if df != dr {
					t.Fatalf("%s: pattern %v: fault %s det=%v but rep %s det=%v",
						c.Name, pat, f.Name(c), df, rep.Name(c), dr)
				}
			}
		}
	}
}

func TestCollapseRatioLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := circuits.RandomCircuit(rng, 20, 1000, 10, 2)
	u := Universe(c)
	cl := CollapseEquiv(c, u)
	ratio := float64(len(cl.Reps)) / float64(len(u))
	// The paper: 6000 faults -> "about 3000". Structural equivalence
	// should land well below 0.75 and above 0.3.
	if ratio > 0.75 || ratio < 0.30 {
		t.Fatalf("collapse ratio %.2f (%d -> %d) outside plausible band",
			ratio, len(u), len(cl.Reps))
	}
}

func TestCollapseDominanceShrinks(t *testing.T) {
	c := circuits.C17()
	u := Universe(c)
	cl := CollapseEquiv(c, u)
	dom := CollapseDominance(c, cl.Reps)
	if len(dom) >= len(cl.Reps) {
		t.Fatalf("dominance did not shrink: %d -> %d", len(cl.Reps), len(dom))
	}
}

// TestParallelMatchesSerial cross-checks PPSFP against scalar faulty
// simulation on random patterns — the central simulator consistency
// property.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []*logic.Circuit{
		circuits.C17(),
		circuits.RippleAdder(4),
		circuits.ALU74181(),
		circuits.RandomCircuit(rng, 10, 150, 6, 4),
	}
	for _, c := range cases {
		u := Universe(c)
		patterns := make([][]bool, 96)
		for k := range patterns {
			p := make([]bool, len(c.PIs))
			for i := range p {
				p[i] = rng.Intn(2) == 1
			}
			patterns[k] = p
		}
		res := mustSimulate(t, c, u, patterns, Options{Backend: BackendParallel, Drop: DropOff})
		// Spot-check a sample of faults serially.
		for s := 0; s < 200; s++ {
			fi := rng.Intn(len(u))
			f := u[fi]
			serialFirst := -1
			for pi, pat := range patterns {
				if DetectsCombinational(c, pat, f) {
					serialFirst = pi
					break
				}
			}
			if (serialFirst >= 0) != res.Detected[fi] {
				t.Fatalf("%s: fault %s: serial det=%v parallel det=%v",
					c.Name, f.Name(c), serialFirst >= 0, res.Detected[fi])
			}
			if serialFirst != res.DetectedBy[fi] {
				t.Fatalf("%s: fault %s: first detection serial=%d parallel=%d",
					c.Name, f.Name(c), serialFirst, res.DetectedBy[fi])
			}
		}
	}
}

func TestDropVsNoDropAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := circuits.RippleAdder(4)
	u := Universe(c)
	patterns := make([][]bool, 128)
	for k := range patterns {
		p := make([]bool, len(c.PIs))
		for i := range p {
			p[i] = rng.Intn(2) == 1
		}
		patterns[k] = p
	}
	a := mustSimulate(t, c, u, patterns, Options{Backend: BackendParallel})
	b := mustSimulate(t, c, u, patterns, Options{Backend: BackendParallel, Drop: DropOff})
	for i := range u {
		if a.Detected[i] != b.Detected[i] || a.DetectedBy[i] != b.DetectedBy[i] {
			t.Fatalf("fault %s: drop (%v,%d) vs nodrop (%v,%d)",
				u[i].Name(c), a.Detected[i], a.DetectedBy[i], b.Detected[i], b.DetectedBy[i])
		}
	}
	if a.Coverage() != b.Coverage() {
		t.Fatal("coverage mismatch")
	}
}

func TestExhaustiveCoverageAdder(t *testing.T) {
	// Exhaustive patterns must detect every non-redundant fault of the
	// ripple adder; the adder has no redundancy, so coverage is 100%.
	c := circuits.RippleAdder(3)
	u := Universe(c)
	n := len(c.PIs)
	patterns := make([][]bool, 1<<uint(n))
	for x := range patterns {
		p := make([]bool, n)
		for i := range p {
			p[i] = x>>uint(i)&1 == 1
		}
		patterns[x] = p
	}
	res := mustSimulate(t, c, u, patterns, Options{Backend: BackendParallel})
	if res.Coverage() != 1.0 {
		var left []string
		for _, f := range res.Undetected() {
			left = append(left, f.Name(c))
		}
		t.Fatalf("coverage %.3f; undetected: %v", res.Coverage(), left)
	}
}

func TestSequentialShiftRegisterLatency(t *testing.T) {
	// A stuck fault at the head of an n-stage shift register needs n
	// cycles to reach the output — the observability lag that motivates
	// scan design.
	n := 6
	c := circuits.ShiftRegister(n)
	r0, _ := c.NetByName("R0")
	f := Fault{Gate: r0, Pin: Stem, SA: logic.One}
	seq := make([][]bool, 12)
	for i := range seq {
		seq[i] = []bool{false} // SIN held 0; fault forces 1s through
	}
	res := SimulateSequence(c, []Fault{f}, seq)
	if !res.Detected[0] {
		t.Fatal("fault undetected")
	}
	if res.DetectCyc[0] != n-1 {
		t.Fatalf("detected at cycle %d, want %d", res.DetectCyc[0], n-1)
	}
}

func TestSequentialCoverageCounter(t *testing.T) {
	c := circuits.Counter(3)
	u := Universe(c)
	seq := make([][]bool, 32)
	for i := range seq {
		seq[i] = []bool{true}
	}
	res := SimulateSequence(c, u, seq)
	if res.Coverage() < 0.5 {
		t.Fatalf("counting for 32 cycles should catch most faults, got %.2f", res.Coverage())
	}
	if res.NumCaught == len(u) {
		t.Log("all faults caught (enable-off behavior untested, expected some misses)")
	}
}

func TestFaultNameAndSite(t *testing.T) {
	c := circuits.C17()
	g22, _ := c.NetByName("G22")
	f := Fault{g22, 0, logic.Zero}
	if got := f.Name(c); got != "G22.in0(G10) s-a-0" {
		t.Errorf("Name = %q", got)
	}
	g10, _ := c.NetByName("G10")
	if f.Site(c) != g10 {
		t.Errorf("Site = %d, want %d", f.Site(c), g10)
	}
	fs := Fault{g22, Stem, logic.One}
	if fs.Site(c) != g22 {
		t.Error("stem site wrong")
	}
	if got := fs.Name(c); got != "G22 s-a-1" {
		t.Errorf("stem Name = %q", got)
	}
}
