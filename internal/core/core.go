// Package core is the toolkit facade: it wires the substrates into the
// flow a user actually runs — load or build a circuit, analyze its
// testability, choose a DFT discipline (none, full scan in LSSD or
// mux-scan style, BILBO self-test), generate tests, fault-grade them,
// and report coverage, overhead and test-time economics.
package core

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"dft/internal/atpg"
	"dft/internal/bilbo"
	"dft/internal/compact"
	"dft/internal/cost"
	"dft/internal/fault"
	"dft/internal/fuzzdiff"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/telemetry"
	"dft/internal/testability"
)

// Style selects the DFT discipline applied to a design.
type Style int

const (
	StyleNone    Style = iota // test through package pins only
	StyleLSSD                 // full scan, SRL double-latch discipline
	StyleMuxScan              // full scan, raceless mux-scan flip-flops
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleNone:
		return "none"
	case StyleLSSD:
		return "lssd"
	case StyleMuxScan:
		return "mux-scan"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// Design is a circuit moving through the DFT flow.
type Design struct {
	Circuit *logic.Circuit
	Style   Style

	scan *lssd.Design // non-nil once a scan style is applied
}

// Load parses a .bench document into a Design. The netlist is vetted
// by fuzzdiff.Lint on the way in: structural errors (fanin-width
// violations the parser alone accepts, out-of-range nets) reject the
// file, while warnings such as dangling nets are tolerated — callers
// wanting them use Diagnostics.
func Load(name string, r io.Reader) (*Design, error) {
	c, err := logic.ParseBench(name, r)
	if err != nil {
		return nil, err
	}
	if errs := fuzzdiff.Errors(fuzzdiff.Lint(c)); len(errs) != 0 {
		return nil, fmt.Errorf("core: %s: invalid netlist: %s", name, errs[0])
	}
	return &Design{Circuit: c}, nil
}

// Diagnostics re-lints the design's current circuit, returning every
// structural finding (the Load path has already rejected errors for
// parsed files, so these are typically warnings).
func (d *Design) Diagnostics() []fuzzdiff.Diagnostic {
	return fuzzdiff.Lint(d.Circuit)
}

// LoadString is Load over a string.
func LoadString(name, src string) (*Design, error) {
	return Load(name, strings.NewReader(src))
}

// FromCircuit wraps an existing finalized circuit.
func FromCircuit(c *logic.Circuit) *Design {
	return &Design{Circuit: c}
}

// Analyze runs SCOAP and returns the summary plus the k hardest nets.
func (d *Design) Analyze(k int) (testability.Summary, []testability.NetReport) {
	m := testability.Analyze(d.Circuit)
	return m.Summarize(), m.Hardest(d.Circuit, k)
}

// ApplyScan converts the design to the given scan style. The original
// circuit is retained; test generation switches to the full-scan view.
func (d *Design) ApplyScan(style Style) error {
	switch style {
	case StyleLSSD:
		d.scan = lssd.NewDesign(d.Circuit, lssd.StyleLSSD)
	case StyleMuxScan:
		d.scan = lssd.NewDesign(d.Circuit, lssd.StyleMuxScan)
	case StyleNone:
		d.scan = nil
	default:
		return fmt.Errorf("core: unsupported style %v", style)
	}
	d.Style = style
	return nil
}

// Scan exposes the scan design (nil when StyleNone).
func (d *Design) Scan() *lssd.Design { return d.scan }

// View returns the test-generation view implied by the style.
func (d *Design) View() atpg.View {
	if d.Style == StyleNone {
		return atpg.PrimaryView(d.Circuit)
	}
	return atpg.FullScanView(d.Circuit)
}

// Faults returns the collapsed fault list for the design.
func (d *Design) Faults() []fault.Fault {
	cl := fault.CollapseEquiv(d.Circuit, fault.Universe(d.Circuit))
	return cl.Reps
}

// TestSet is the outcome of test generation.
type TestSet struct {
	Patterns   [][]bool
	Coverage   float64 // of testable faults
	RawCover   float64 // of all targeted faults
	Untestable int
	Aborted    int
	TargetN    int
	// Compaction holds the compaction pass's stats, nil when compaction
	// was off.
	Compaction *compact.Stats
}

// GenerateOptions tunes Generate.
type GenerateOptions struct {
	Engine        atpg.Engine
	RandomFirst   int
	MaxBacktracks int
	Seed          int64
	// Compact is the legacy on/off switch, equivalent to CompactMode =
	// compact.ModeReverse; CompactMode wins when both are set.
	Compact bool
	// CompactMode selects the compaction pipeline (off / reverse /
	// static / dynamic / full) run on the generated set.
	CompactMode compact.Mode
	// Rand, when non-nil, is the injected random source; it takes
	// precedence over Seed.
	Rand *rand.Rand
	// Workers is the fault-simulation sharding degree, with the same
	// meaning as fault.Options.Workers: 0 selects GOMAXPROCS. Detection
	// outcomes are identical for every worker count.
	Workers int
	// Metrics receives the run's telemetry; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
}

// Generate runs ATPG under the design's view.
func (d *Design) Generate(opt GenerateOptions) TestSet {
	ts, _ := d.GenerateContext(context.Background(), opt)
	return ts
}

// GenerateContext is Generate under a context deadline: the run stops
// between targets when ctx expires and returns the zero TestSet plus
// ctx's error. CLI -timeout and the dftd job runner share this path.
func (d *Design) GenerateContext(ctx context.Context, opt GenerateOptions) (TestSet, error) {
	ctx, span := telemetry.StartSpanCtx(ctx, telemetry.OrDefault(opt.Metrics), "core.generate")
	span.SetDetail(d.Circuit.Name)
	defer span.End()
	targets := d.Faults()
	mode := opt.CompactMode
	if mode == compact.ModeOff && opt.Compact {
		mode = compact.ModeReverse
	}
	res, err := atpg.GenerateContext(ctx, d.Circuit, d.View(), targets, atpg.Config{
		Engine:        opt.Engine,
		MaxBacktracks: opt.MaxBacktracks,
		RandomSeed:    opt.Seed,
		RandomFirst:   opt.RandomFirst,
		Rand:          opt.Rand,
		Workers:       opt.Workers,
		Dynamic:       mode.Dynamic(),
		Metrics:       opt.Metrics,
	})
	if err != nil {
		return TestSet{}, err
	}
	ts := TestSet{
		Coverage:   res.Coverage,
		RawCover:   res.RawCover,
		Untestable: len(res.Untestable),
		Aborted:    len(res.Aborted),
		TargetN:    len(targets),
	}
	if mode.Enabled() {
		st, err := compact.Result(ctx, d.Circuit, d.View(), targets, res, compact.Options{
			Mode:    mode,
			Workers: opt.Workers,
			Rand:    opt.Rand,
			Seed:    opt.Seed,
			Metrics: opt.Metrics,
		})
		if err != nil {
			return TestSet{}, err
		}
		ts.Compaction = st
	}
	ts.Patterns = res.Patterns
	return ts, nil
}

// RandomTests generates random patterns with fault dropping and
// returns the resulting set and coverage. The source is private to the
// call, so a fixed seed reproduces exactly; see RandomTestsRand to
// inject one.
func (d *Design) RandomTests(budget int, seed int64) TestSet {
	return d.RandomTestsRand(budget, rand.New(rand.NewSource(seed)))
}

// RandomTestsRand is RandomTests with an injected random source.
func (d *Design) RandomTestsRand(budget int, rng *rand.Rand) TestSet {
	span := telemetry.Default().StartSpan("core.randomtests")
	span.SetDetail(d.Circuit.Name)
	defer span.End()
	targets := d.Faults()
	res := atpg.RandomGenerate(d.Circuit, d.View(), targets, 1.0, budget, rng)
	return TestSet{
		Patterns: res.Patterns,
		Coverage: res.Coverage,
		RawCover: res.Coverage,
		TargetN:  len(targets),
	}
}

// FaultGrade fault-simulates an arbitrary pattern set under the
// design's view.
func (d *Design) FaultGrade(patterns [][]bool) float64 {
	span := telemetry.Default().StartSpan("core.faultgrade")
	span.SetDetail(d.Circuit.Name)
	defer span.End()
	view := d.View()
	targets := d.Faults()
	res, _ := fault.Simulate(context.Background(), d.Circuit, targets, patterns, fault.Options{
		View: fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
	})
	return res.Coverage()
}

// Report summarizes the whole flow for a generated test set.
type Report struct {
	Name         string
	Style        Style
	Gates        int
	DFFs         int
	FaultTargets int
	Patterns     int
	Coverage     float64
	OverheadPct  float64 // scan hardware overhead (0 when none)
	TesterCycles int     // scan serialization cost (0 when none)
	DefectPer1e6 float64 // shipped defect level at 90% yield, parts per million
}

// BuildReport assembles the economics of a test set.
func (d *Design) BuildReport(ts TestSet) Report {
	r := Report{
		Name:         d.Circuit.Name,
		Style:        d.Style,
		Gates:        d.Circuit.NumGates(),
		DFFs:         d.Circuit.NumDFFs(),
		FaultTargets: ts.TargetN,
		Patterns:     len(ts.Patterns),
		Coverage:     ts.RawCover,
		DefectPer1e6: cost.DefectLevel(0.90, ts.RawCover) * 1e6,
	}
	if d.scan != nil {
		r.OverheadPct = lssd.Overhead(d.Circuit, d.scan.Scanned) * 100
		r.TesterCycles = d.scan.TestCycles(len(ts.Patterns))
	}
	return r
}

// String renders the report as a fixed-width block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design    : %s (style %s)\n", r.Name, r.Style)
	fmt.Fprintf(&b, "structure : %d gates, %d flip-flops\n", r.Gates, r.DFFs)
	fmt.Fprintf(&b, "faults    : %d collapsed targets\n", r.FaultTargets)
	fmt.Fprintf(&b, "tests     : %d patterns, coverage %.2f%%\n", r.Patterns, r.Coverage*100)
	if r.TesterCycles > 0 {
		fmt.Fprintf(&b, "scan      : %.1f%% gate overhead, %d tester cycles\n", r.OverheadPct, r.TesterCycles)
	}
	fmt.Fprintf(&b, "quality   : %.0f defective ppm shipped at 90%% yield\n", r.DefectPer1e6)
	return b.String()
}

// SelfTestPlan wires two combinational circuits into a BILBO self-test
// and reports its coverage — the built-in alternative to scan+ATPG.
func SelfTestPlan(c1, c2 *logic.Circuit, patterns int) (bilbo.CoverageSummary, error) {
	w1 := len(c1.PIs)
	if n := len(c2.POs); n > w1 {
		w1 = n
	}
	w2 := len(c1.POs)
	if n := len(c2.PIs); n > w2 {
		w2 = n
	}
	if w1 > 64 || w2 > 64 {
		return bilbo.CoverageSummary{}, fmt.Errorf("core: networks too wide for BILBO registers")
	}
	if w1 < 2 {
		w1 = 2
	}
	if w2 < 2 {
		w2 = 2
	}
	st := bilbo.NewSelfTest(c1, c2, w1, w2, patterns)
	cl := fault.CollapseEquiv(c1, fault.Universe(c1))
	return st.MeasureCoverage(cl.Reps), nil
}
