package core

import (
	"strings"
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestLoadAndGenerateCombinational(t *testing.T) {
	d, err := LoadString("c17", c17Bench)
	if err != nil {
		t.Fatal(err)
	}
	sum, hardest := d.Analyze(3)
	if sum.MaxCO <= 0 || len(hardest) != 3 {
		t.Fatalf("analysis: %v / %d rows", sum, len(hardest))
	}
	ts := d.Generate(GenerateOptions{Engine: atpg.EnginePodem})
	if ts.Coverage < 1.0 || ts.Aborted != 0 {
		t.Fatalf("coverage %.3f, %d aborted", ts.Coverage, ts.Aborted)
	}
	rep := d.BuildReport(ts)
	s := rep.String()
	if !strings.Contains(s, "c17") || !strings.Contains(s, "100.00%") {
		t.Fatalf("report:\n%s", s)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadString("bad", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)"); err == nil {
		t.Fatal("bad bench accepted")
	}
}

func TestSequentialFlowNoScanVsScan(t *testing.T) {
	c := circuits.Counter(8)
	noScan := FromCircuit(c)
	ts0 := noScan.Generate(GenerateOptions{Engine: atpg.EnginePodem, MaxBacktracks: 500})

	scanned := FromCircuit(c)
	if err := scanned.ApplyScan(StyleLSSD); err != nil {
		t.Fatal(err)
	}
	ts1 := scanned.Generate(GenerateOptions{Engine: atpg.EnginePodem})
	if ts1.RawCover != 1.0 {
		t.Fatalf("scan coverage %.3f", ts1.RawCover)
	}
	if ts0.RawCover >= ts1.RawCover {
		t.Fatalf("no-scan coverage %.3f should trail scan %.3f", ts0.RawCover, ts1.RawCover)
	}
	rep := scanned.BuildReport(ts1)
	if rep.OverheadPct <= 0 || rep.TesterCycles <= 0 {
		t.Fatalf("scan report missing economics: %+v", rep)
	}
	if !strings.Contains(rep.String(), "scan") {
		t.Fatal("report missing scan block")
	}
}

func TestApplyScanStyles(t *testing.T) {
	c := circuits.Counter(4)
	d := FromCircuit(c)
	for _, s := range []Style{StyleLSSD, StyleMuxScan, StyleNone} {
		if err := d.ApplyScan(s); err != nil {
			t.Fatalf("style %v: %v", s, err)
		}
		if s == StyleNone && d.Scan() != nil {
			t.Fatal("StyleNone should clear the scan design")
		}
		if s != StyleNone && d.Scan() == nil {
			t.Fatalf("style %v did not build scan", s)
		}
	}
	if StyleLSSD.String() != "lssd" || StyleNone.String() != "none" {
		t.Fatal("style names")
	}
}

func TestRandomTestsAndFaultGrade(t *testing.T) {
	d := FromCircuit(circuits.RippleAdder(6))
	ts := d.RandomTests(1500, 3)
	if ts.Coverage < 0.9 {
		t.Fatalf("random coverage %.3f", ts.Coverage)
	}
	if got := d.FaultGrade(ts.Patterns); got < ts.Coverage-1e-9 {
		t.Fatalf("fault grade %.3f below generation coverage %.3f", got, ts.Coverage)
	}
}

func TestGenerateCompaction(t *testing.T) {
	d := FromCircuit(circuits.RippleAdder(5))
	full := d.Generate(GenerateOptions{Engine: atpg.EnginePodem, RandomFirst: 256, Seed: 1})
	compact := d.Generate(GenerateOptions{Engine: atpg.EnginePodem, RandomFirst: 256, Seed: 1, Compact: true})
	if len(compact.Patterns) > len(full.Patterns) {
		t.Fatalf("compaction grew set: %d -> %d", len(full.Patterns), len(compact.Patterns))
	}
	if got := d.FaultGrade(compact.Patterns); got < full.RawCover {
		t.Fatalf("compacted grade %.3f below %.3f", got, full.RawCover)
	}
}

func TestSelfTestPlan(t *testing.T) {
	cs, err := SelfTestPlan(circuits.RippleAdder(3), circuits.ParityTree(8), 300)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Coverage() < 0.9 {
		t.Fatalf("self-test coverage %.3f", cs.Coverage())
	}
	if _, err := SelfTestPlan(circuits.RippleAdder(40), circuits.ParityTree(8), 10); err == nil {
		t.Fatal("oversized plan accepted")
	}
}

func TestDalgEngineThroughFacade(t *testing.T) {
	d, _ := LoadString("c17", c17Bench)
	ts := d.Generate(GenerateOptions{Engine: atpg.EngineDAlg})
	if ts.Coverage < 1.0 {
		t.Fatalf("dalg coverage %.3f", ts.Coverage)
	}
}
