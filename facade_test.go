package dft

// Façade tests: the public dft-root surface must carry a downstream
// adopter through load → generate → grade without reaching into
// internal/ packages directly.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"dft/internal/circuits"
)

func TestFacadeSimulate(t *testing.T) {
	c := circuits.RippleAdder(4)
	faults := FaultUniverse(c)
	rng := rand.New(rand.NewSource(3))
	pats := make([][]bool, 128)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	base, err := Simulate(context.Background(), c, faults, pats, SimOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Coverage() <= 0.5 {
		t.Fatalf("implausible coverage %.3f", base.Coverage())
	}
	for _, opts := range []SimOptions{
		{Backend: BackendParallel, Workers: 4},
		{Backend: BackendSerial},
		{Backend: BackendDeductive, Drop: DropOff},
		{Backend: BackendAuto, Workers: WorkersAuto},
	} {
		got, err := Simulate(context.Background(), c, faults, pats, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Backend, err)
		}
		if got.NumCaught != base.NumCaught {
			t.Fatalf("%v: caught %d, want %d", opts.Backend, got.NumCaught, base.NumCaught)
		}
		for i := range faults {
			if got.DetectedBy[i] != base.DetectedBy[i] {
				t.Fatalf("%v fault %d: DetectedBy %d, want %d",
					opts.Backend, i, got.DetectedBy[i], base.DetectedBy[i])
			}
		}
	}
}

// trippingContext reports itself cancelled once it has been polled
// more than trip times. It makes "cancelled mid-run" deterministic:
// the engine's first deadline check passes, every later one fails —
// no real timers, no dependence on scheduler latency.
type trippingContext struct {
	context.Context
	mu    sync.Mutex
	calls int
	trip  int
	done  chan struct{}
}

func newTrippingContext(trip int) *trippingContext {
	return &trippingContext{
		Context: context.Background(),
		trip:    trip,
		done:    make(chan struct{}),
	}
}

func (c *trippingContext) Done() <-chan struct{} { return c.done }

func (c *trippingContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls <= c.trip {
		return nil
	}
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return context.Canceled
}

// TestFacadeCancellation pins the façade's context contract: a
// cancelled context yields a nil result and the context's error —
// whether cancelled before the call or mid-run — and the engine stays
// reusable afterwards.
func TestFacadeCancellation(t *testing.T) {
	c := circuits.Cascade74181(4)
	faults := FaultUniverse(c)
	rng := rand.New(rand.NewSource(7))
	pats := make([][]bool, 512)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	eng := NewSimEngine(c, SimOptions{Drop: DropOff})

	// Already cancelled: no work happens.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := eng.Run(ctx, faults, pats)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run = (%v, %v), want (nil, context.Canceled)", res, err)
	}

	// Cancelled mid-run: the engine polls the context between pattern
	// blocks, so a context that trips after its first poll cancels the
	// run after work has started — deterministically, with no timers.
	res, err = eng.Run(newTrippingContext(1), faults, pats)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel = (%v, %v), want (nil, context.Canceled)", res, err)
	}

	// The same engine still completes a clean run.
	res, err = eng.Run(context.Background(), faults, pats)
	if err != nil || res == nil {
		t.Fatalf("post-cancel run = (%v, %v)", res, err)
	}
	if res.Coverage() <= 0.5 {
		t.Fatalf("implausible coverage %.3f after cancellation", res.Coverage())
	}

	// And the one-shot façade entry point follows the same contract.
	ctx, cancel = context.WithCancel(context.Background())
	cancel()
	if res, err := Simulate(ctx, c, faults, pats, SimOptions{}); res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Simulate with cancelled ctx = (%v, %v)", res, err)
	}
}

func TestFacadeFlow(t *testing.T) {
	d := FromCircuit(circuits.C17())
	ts := d.Generate(GenerateOptions{RandomFirst: 64, Workers: WorkersAuto})
	if ts.Coverage < 1.0 {
		t.Fatalf("C17 coverage %.3f, want 1.0", ts.Coverage)
	}
	if got := d.FaultGrade(ts.Patterns); got < 1.0 {
		t.Fatalf("FaultGrade %.3f, want 1.0", got)
	}
}
