package dft

// Façade tests: the public dft-root surface must carry a downstream
// adopter through load → generate → grade without reaching into
// internal/ packages directly.

import (
	"context"
	"math/rand"
	"testing"

	"dft/internal/circuits"
)

func TestFacadeSimulate(t *testing.T) {
	c := circuits.RippleAdder(4)
	faults := FaultUniverse(c)
	rng := rand.New(rand.NewSource(3))
	pats := make([][]bool, 128)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	base, err := Simulate(context.Background(), c, faults, pats, SimOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Coverage() <= 0.5 {
		t.Fatalf("implausible coverage %.3f", base.Coverage())
	}
	for _, opts := range []SimOptions{
		{Backend: BackendParallel, Workers: 4},
		{Backend: BackendSerial},
		{Backend: BackendDeductive, Drop: DropOff},
		{Backend: BackendAuto, Workers: WorkersAuto},
	} {
		got, err := Simulate(context.Background(), c, faults, pats, opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Backend, err)
		}
		if got.NumCaught != base.NumCaught {
			t.Fatalf("%v: caught %d, want %d", opts.Backend, got.NumCaught, base.NumCaught)
		}
		for i := range faults {
			if got.DetectedBy[i] != base.DetectedBy[i] {
				t.Fatalf("%v fault %d: DetectedBy %d, want %d",
					opts.Backend, i, got.DetectedBy[i], base.DetectedBy[i])
			}
		}
	}
}

func TestFacadeFlow(t *testing.T) {
	d := FromCircuit(circuits.C17())
	ts := d.Generate(GenerateOptions{RandomFirst: 64, Workers: WorkersAuto})
	if ts.Coverage < 1.0 {
		t.Fatalf("C17 coverage %.3f, want 1.0", ts.Coverage)
	}
	if got := d.FaultGrade(ts.Patterns); got < 1.0 {
		t.Fatalf("FaultGrade %.3f, want 1.0", got)
	}
}
