package dft

// Root-level assertions for the extension experiments: the paper's
// §I.A caveats (bridging faults, CMOS stuck-opens), sequential ATPG by
// time-frame expansion, and random-pattern testability prediction.

import (
	"testing"

	"dft/internal/experiments"
)

func TestExpBridging(t *testing.T) {
	r := experiments.Bridging().(experiments.BridgeResult)
	if r.SSACoverage < 1.0 {
		t.Fatalf("setup: SSA coverage %.3f", r.SSACoverage)
	}
	cov := float64(r.BridgeDetected) / float64(r.BridgeTotal)
	if cov < 0.9 {
		t.Fatalf("bridge coverage %.3f; the paper's claim needs 'high 90s' behavior", cov)
	}
	render(t, "bridging")
}

func TestExpCMOS(t *testing.T) {
	r := experiments.CMOSStuckOpen().(experiments.CMOSResult)
	if r.BestOrderMiss == 0 {
		t.Skip("no ordering of this SSA set missed a stuck-open (rare but possible)")
	}
	if r.TwoPatternFound < r.Universe*9/10 {
		t.Fatalf("two-pattern generation found %d of %d", r.TwoPatternFound, r.Universe)
	}
	if r.TwoPatternHit != r.TwoPatternFound {
		t.Fatalf("generated tests failed to detect: %d/%d", r.TwoPatternHit, r.TwoPatternFound)
	}
	render(t, "cmos")
}

func TestExpSeqATPG(t *testing.T) {
	r := experiments.SequentialATPG().(experiments.SeqATPGResult)
	t.Log("\n" + r.Render())
	if !r.DeepFailed {
		t.Fatal("the deep counter bit must defeat a 4-frame bound")
	}
	if float64(r.Detected)/float64(r.Faults) < 0.8 {
		t.Fatalf("bounded sequential ATPG covered %d/%d", r.Detected, r.Faults)
	}
	multi := 0
	for d, n := range r.Depths {
		if d > 1 {
			multi += n
		}
	}
	if multi == 0 {
		t.Fatal("expected multi-frame tests")
	}
}

func TestExpProbability(t *testing.T) {
	r := experiments.Probability().(experiments.ProbResult)
	if r.PLAExpected < 1e5 {
		t.Fatalf("PLA expected patterns %.3g, want ≈2^20", r.PLAExpected)
	}
	if r.AdderExpected > 1e3 {
		t.Fatalf("adder expected patterns %.3g, want small", r.AdderExpected)
	}
	if !r.WeightsHigh || !r.WeightedWins {
		t.Fatalf("weight derivation failed: %+v", r)
	}
	render(t, "probability")
}

func TestExpPLAATPG(t *testing.T) {
	r := experiments.PLAATPG().(experiments.PLAATPGResult)
	if r.DetCoverage < 0.95 {
		t.Fatalf("deterministic PLA coverage %.3f", r.DetCoverage)
	}
	if r.RandCoverage > r.DetCoverage/2 {
		t.Fatalf("random %.3f too close to deterministic %.3f", r.RandCoverage, r.DetCoverage)
	}
	if float64(r.Deterministic) > r.Exhaustive/100 {
		t.Fatalf("deterministic set %d not ≪ exhaustive %.0f", r.Deterministic, r.Exhaustive)
	}
	render(t, "plaatpg")
}
