package dft

import (
	"context"
	"testing"

	"dft/internal/fault"
	"dft/internal/logic"
)

// mustFaultSim grades faults through the engine's Options surface,
// failing the test on error — the migration shim for the removed
// package-level convenience wrappers.
func mustFaultSim(tb testing.TB, c *logic.Circuit, faults []fault.Fault, pats [][]bool, opts fault.Options) *fault.Result {
	tb.Helper()
	res, err := fault.Simulate(context.Background(), c, faults, pats, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}
