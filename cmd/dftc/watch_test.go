package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// sseFixture serves a canned dftd-style event stream, honoring
// Last-Event-ID so reconnects replay only the missed suffix.
func sseFixture(t *testing.T, frames []string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/events") {
			http.NotFound(w, r)
			return
		}
		after := 0
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			after, _ = strconv.Atoi(v)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		for i, f := range frames {
			if i < after {
				continue
			}
			fmt.Fprint(w, f)
		}
	}))
}

// frame renders one SSE frame like the service's writeSSE.
func frame(seq int, typ, data string) string {
	return fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", seq, typ, data)
}

func doneFrames() []string {
	return []string{
		frame(1, "queued", `{"seq":1,"type":"queued","state":"queued","position":2}`),
		frame(2, "running", `{"seq":2,"type":"running","state":"running"}`),
		frame(3, "phase", `{"seq":3,"type":"phase","phase":"fault.sim.engine"}`),
		frame(4, "progress", `{"seq":4,"type":"progress","name":"fault.sim.progress","done":640,"total":2640}`),
		frame(5, "heartbeat", `{"seq":5,"type":"heartbeat","state":"running"}`),
		frame(6, "end", `{"seq":6,"type":"end","state":"done"}`),
	}
}

// TestWatchStream parses a full stream and surfaces the terminal
// event with the resume cursor advanced past it.
func TestWatchStream(t *testing.T) {
	ts := sseFixture(t, doneFrames())
	defer ts.Close()

	var lastSeq int64
	terminal, err := watchStream(ts.URL+"/v1/jobs/job-000001/events", &lastSeq, true)
	if err != nil {
		t.Fatal(err)
	}
	if terminal == nil || terminal.Type != "end" || terminal.State != "done" {
		t.Fatalf("terminal = %+v, want end/done", terminal)
	}
	if lastSeq != 6 {
		t.Fatalf("lastSeq = %d, want 6", lastSeq)
	}
	if err := watchExit(terminal); err != nil {
		t.Fatalf("done job should exit clean, got %v", err)
	}
}

// TestWatchStreamResume: a mid-stream cursor turns into Last-Event-ID
// and only the suffix is consumed.
func TestWatchStreamResume(t *testing.T) {
	ts := sseFixture(t, doneFrames())
	defer ts.Close()

	lastSeq := int64(4) // already saw up through the progress tick
	terminal, err := watchStream(ts.URL+"/v1/jobs/job-000001/events", &lastSeq, true)
	if err != nil || terminal == nil {
		t.Fatalf("resume: terminal=%v err=%v", terminal, err)
	}
	if terminal.Seq != 6 || lastSeq != 6 {
		t.Fatalf("resume ended at seq %d (cursor %d), want 6", terminal.Seq, lastSeq)
	}
}

// TestWatchStreamErrors: a 404 from the server is reported with its
// JSON error detail, and non-done terminal states map to non-nil exit
// errors carrying the cancel reason.
func TestWatchStreamErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"service: unknown job"}`)
	}))
	defer ts.Close()

	var lastSeq int64
	if _, err := watchStream(ts.URL+"/v1/jobs/nope/events", &lastSeq, true); err == nil ||
		!strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("404 stream error = %v, want the server's detail", err)
	}

	for _, tc := range []struct {
		e    watchEvent
		want string
	}{
		{watchEvent{Type: "end", State: "failed", Error: "boom"}, "boom"},
		{watchEvent{Type: "end", State: "cancelled", CancelReason: "deadline"}, "deadline"},
	} {
		err := watchExit(&tc.e)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("watchExit(%+v) = %v, want error mentioning %q", tc.e, err, tc.want)
		}
	}
}

// TestWatchCommand drives cmdWatch end to end against the fixture,
// including the scheme-defaulting on a bare host:port server string.
func TestWatchCommand(t *testing.T) {
	ts := sseFixture(t, doneFrames())
	defer ts.Close()

	host := strings.TrimPrefix(ts.URL, "http://")
	if err := cmdWatch([]string{host, "job-000001", "-json"}); err != nil {
		t.Fatalf("watch of a done job = %v, want nil", err)
	}
	if err := cmdWatch([]string{host}); err == nil {
		t.Fatal("missing job-id not rejected")
	}
}
