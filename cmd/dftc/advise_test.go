package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dft/internal/advise"
	"dft/internal/telemetry"
)

// TestAdviseCLIReachesTarget is the CLI acceptance criterion:
// `dftc advise -builtin hardcore -target 0.99` climbs from a sub-90%
// baseline to the target, prints the step table, and -out saves a
// plan that parses back with monotone non-decreasing coverage.
func TestAdviseCLIReachesTarget(t *testing.T) {
	telemetry.Default().Reset()
	planPath := filepath.Join(t.TempDir(), "plan.json")
	out := captureStdout(t, func() error {
		return run([]string{"advise", "-builtin", "hardcore", "-target", "0.99", "-seed", "7", "-out", planPath})
	})
	if !strings.Contains(out, "final coverage") || !strings.Contains(out, "(target)") {
		t.Fatalf("advise output missing final coverage / target stop:\n%s", out)
	}

	raw, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	var plan advise.Plan
	if err := json.Unmarshal(raw, &plan); err != nil {
		t.Fatalf("plan does not parse: %v", err)
	}
	if plan.Baseline >= 0.90 {
		t.Fatalf("baseline %.4f, want < 0.90", plan.Baseline)
	}
	if plan.Coverage < 0.99 || plan.StopReason != advise.StopTarget {
		t.Fatalf("coverage %.4f stop %q, want >= 0.99 via target", plan.Coverage, plan.StopReason)
	}
	prev := plan.Baseline
	for i, s := range plan.Steps {
		if s.Coverage < prev {
			t.Fatalf("step %d coverage %.4f < previous %.4f — not monotone", i, s.Coverage, prev)
		}
		prev = s.Coverage
	}
}

// TestAdviseCLIJSONReport locks the -json report shape.
func TestAdviseCLIJSONReport(t *testing.T) {
	telemetry.Default().Reset()
	out := captureStdout(t, func() error {
		return run([]string{"advise", "-builtin", "hardcore", "-seed", "7", "-json"})
	})
	rep, err := telemetry.ParseReport([]byte(out))
	if err != nil {
		t.Fatalf("ParseReport: %v\noutput:\n%s", err, out)
	}
	if rep.Tool != "dftc" || rep.Command != "advise" || rep.Input != "hardcore" {
		t.Fatalf("report header = %q/%q/%q", rep.Tool, rep.Command, rep.Input)
	}
	cov, ok := rep.Results["coverage"].(float64)
	if !ok || cov < 0.99 {
		t.Fatalf("coverage = %v, want >= 0.99", rep.Results["coverage"])
	}
	if rep.Results["stop_reason"] != "target" {
		t.Fatalf("stop_reason = %v", rep.Results["stop_reason"])
	}
	if _, ok := rep.Results["plan"].(map[string]any); !ok {
		t.Fatalf("results carry no embedded plan: %T", rep.Results["plan"])
	}
	c := rep.Metrics.Counters
	for _, name := range []string{
		"advise.interventions.applied",
		"advise.candidates.scored",
		"advise.probe.patterns",
	} {
		if c[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, c[name])
		}
	}
	if _, ok := rep.Metrics.Timers["advise.run"]; !ok {
		t.Error("missing advise.run timer")
	}
}

// TestInfoJSONTestability locks the testability section of
// `dftc info -json`: SCOAP aggregates plus per-net COP annotations.
func TestInfoJSONTestability(t *testing.T) {
	telemetry.Default().Reset()
	bench := writeBenchBuiltin(t, "hardcore")
	out := captureStdout(t, func() error {
		return run([]string{"info", bench, "-json", "-top", "5"})
	})
	rep, err := telemetry.ParseReport([]byte(out))
	if err != nil {
		t.Fatalf("ParseReport: %v\noutput:\n%s", err, out)
	}
	sec, ok := rep.Results["testability"].(map[string]any)
	if !ok {
		t.Fatalf("no testability section: %T", rep.Results["testability"])
	}
	if _, ok := sec["scoap"].(map[string]any); !ok {
		t.Fatal("testability section has no scoap summary")
	}
	nets, ok := sec["hardest_nets"].([]any)
	if !ok || len(nets) != 5 {
		t.Fatalf("hardest_nets = %v, want 5 rows", sec["hardest_nets"])
	}
	row, ok := nets[0].(map[string]any)
	if !ok {
		t.Fatalf("hardest net row: %T", nets[0])
	}
	for _, key := range []string{"net", "cc0", "cc1", "co", "p1", "obs"} {
		if _, ok := row[key]; !ok {
			t.Errorf("hardest net row missing %q: %v", key, row)
		}
	}
	if stems, ok := sec["reconvergent_stems"].(float64); !ok || stems <= 0 {
		t.Fatalf("reconvergent_stems = %v, want > 0 on hardcore", sec["reconvergent_stems"])
	}
}

// writeBenchBuiltin materializes a named library circuit via the
// bench subcommand's generator table.
func writeBenchBuiltin(t *testing.T, name string) string {
	t.Helper()
	out := captureStdout(t, func() error {
		return run([]string{"bench", name})
	})
	path := filepath.Join(t.TempDir(), name+".bench")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
