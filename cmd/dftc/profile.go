package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"dft/internal/atpg"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/signature"
	"dft/internal/telemetry"
)

// cmdProfile runs a fixed, seed-stable workload over one circuit —
// load, SCOAP, random fault grading, ATPG with both engines,
// compaction, signature analysis — and reports where the time goes.
// Every phase is recorded as a telemetry span named profile.<phase>,
// so -stats shows the same breakdown with full counter context and
// -json emits it as a run report.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for the workload")
	random := fs.Int("random", 512, "random patterns in the grading phase")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("profile needs one .bench file")
	}
	reg := telemetry.Default()

	type phase struct {
		name    string
		elapsed time.Duration
		note    string
	}
	var phases []phase
	step := func(name string, f func() string) {
		span := reg.StartSpan("profile." + name)
		start := time.Now()
		note := f()
		span.SetDetail(note)
		span.End()
		phases = append(phases, phase{name, time.Since(start), note})
	}

	var d *core.Design
	var loadErr error
	step("load", func() string {
		d, loadErr = loadDesign(fs.Arg(0))
		if loadErr != nil {
			return loadErr.Error()
		}
		return fmt.Sprint(d.Circuit.Stats())
	})
	if loadErr != nil {
		return loadErr
	}

	step("scoap", func() string {
		sum, _ := d.Analyze(1)
		return fmt.Sprint(sum)
	})

	var graded core.TestSet
	step("faultsim", func() string {
		graded = d.RandomTestsRand(*random, rand.New(rand.NewSource(*seed)))
		return fmt.Sprintf("%d random patterns, coverage %.2f%%", *random, graded.Coverage*100)
	})

	results := map[string]any{}
	var podemSet core.TestSet
	for _, eng := range []struct {
		name   string
		engine atpg.Engine
	}{{"podem", atpg.EnginePodem}, {"dalg", atpg.EngineDAlg}} {
		eng := eng
		step("atpg-"+eng.name, func() string {
			ts := d.Generate(core.GenerateOptions{
				Engine:      eng.engine,
				RandomFirst: *random,
				Seed:        *seed,
			})
			if eng.engine == atpg.EnginePodem {
				podemSet = ts
			}
			results["atpg_"+eng.name+"_coverage"] = ts.RawCover
			results["atpg_"+eng.name+"_patterns"] = len(ts.Patterns)
			return fmt.Sprintf("%d patterns, coverage %.2f%%", len(ts.Patterns), ts.RawCover*100)
		})
	}

	step("compact", func() string {
		kept, _, err := compact.Patterns(context.Background(), d.Circuit, d.View(), d.Faults(),
			podemSet.Patterns, compact.Options{Mode: compact.ModeReverse})
		if err != nil {
			return fmt.Sprintf("error: %v", err)
		}
		results["compact_kept"] = len(kept)
		return fmt.Sprintf("%d -> %d patterns", len(podemSet.Patterns), len(kept))
	})

	step("signature", func() string {
		board := &signature.Board{C: d.Circuit, Stimulus: signature.SelfStimulus(d.Circuit, 256)}
		a := signature.NewAnalyzer(16)
		nets := d.Circuit.POs
		if len(nets) > 4 {
			nets = nets[:4]
		}
		sigs := board.GoldenSignatures(a, nets)
		return fmt.Sprintf("%d nets probed over %d cycles", len(sigs), len(board.Stimulus))
	})

	if *jsonOut {
		rep := telemetry.NewReport("dftc", "profile", fs.Arg(0))
		rep.Config = map[string]any{"seed": *seed, "random": *random}
		var total time.Duration
		for _, p := range phases {
			results["phase_"+p.name+"_ns"] = p.elapsed.Nanoseconds()
			total += p.elapsed
		}
		results["total_ns"] = total.Nanoseconds()
		results["faultsim_coverage"] = graded.Coverage
		rep.Results = results
		return rep.Finish(reg).WriteJSON(os.Stdout)
	}

	var total time.Duration
	for _, p := range phases {
		total += p.elapsed
	}
	fmt.Printf("profile of %s (seed %d)\n", fs.Arg(0), *seed)
	fmt.Printf("%-12s %12s %6s  %s\n", "phase", "elapsed", "share", "outcome")
	for _, p := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(p.elapsed) / float64(total)
		}
		fmt.Printf("%-12s %12s %5.1f%%  %s\n", p.name, p.elapsed.Round(time.Microsecond), share, firstLine(p.note))
	}
	fmt.Printf("%-12s %12s\n", "total", total.Round(time.Microsecond))
	return nil
}

// firstLine trims a multi-line note to its first line for the table.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
