// Command dftc is the toolkit's command-line front end: circuit
// inspection, SCOAP testability analysis, ATPG, fault simulation, scan
// insertion, BILBO self-test planning, syndrome/Walsh measurement,
// LFSR utilities, bridging/stuck-open/sequential extensions, fault
// diagnosis, profiling, and regeneration of every paper experiment.
//
// Usage:
//
//	dftc info      <file.bench> [-top N] [-json]
//	dftc scoap     <file.bench> [-top N]
//	dftc atpg      <file.bench> [-engine podem|dalg] [-scan] [-random N] [-compact off|reverse|static|dynamic|full] [-workers N] [-kernel compiled|interp] [-timeout D] [-json]
//	dftc compact   <file.bench> [-mode reverse|static|full] [-in cubes.txt | -random N] [-seed S] [-scan] [-workers N] [-kernel compiled|interp] [-timeout D] [-json] [-out file]
//	dftc faultsim  <file.bench> [-patterns N] [-seed S] [-scan] [-engine auto|parallel|faultparallel|cpt|deductive|serial] [-workers N] [-kernel compiled|interp] [-timeout D] [-json]
//	dftc scan      <file.bench> [-style lssd|mux]
//	dftc bilbo     <c1.bench> <c2.bench> [-patterns N]
//	dftc syndrome  <file.bench>
//	dftc walsh     <file.bench> [-out K]
//	dftc lfsr      [-width N] [-clocks K]
//	dftc bench     <generator> [args...]   (emit a library circuit as .bench)
//	dftc bridge    <file.bench> [-limit N] [-window W] [-seed S]
//	dftc cmos      <file.bench> [-seed S]
//	dftc seqtest   <file.bench> [-frames N]
//	dftc diagnose  <file.bench> [-patterns N] [-seed S] [-scan] [-engine B] [-workers N] [-compact M] [-full] [-save F | -load F] [-inject "gN s-a-V" | -signature 0101...] [-top N] [-json]
//	dftc advise    (<file.bench> | -builtin name [-n N]) [-target T] [-budget B] [-max-steps N] [-patterns N] [-seed S] [-workers N] [-style lssd|mux] [-timeout D] [-json] [-out plan.json]
//	dftc profile   <file.bench> [-seed S] [-json]
//	dftc experiments [id] [-json]
//	dftc fuzz      [-rounds N] [-seeds a,b,c] [-patterns N] [-json]
//	dftc watch     <server> <job-id> [-json] [-retries N]
//
// The global -stats flag (accepted anywhere on the command line) dumps
// a telemetry summary — counters, timers, histograms, trace — to
// stderr after the subcommand finishes. Subcommands with -json emit a
// machine-readable run report (schema dft.run-report/v1) on stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"dft/internal/atpg"
	"dft/internal/bilbo"
	"dft/internal/circuits"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/experiments"
	"dft/internal/fault"
	"dft/internal/lfsr"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/sim"
	"dft/internal/syndrome"
	"dft/internal/telemetry"
	"dft/internal/testability"
	"dft/internal/walsh"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dftc:", err)
		os.Exit(1)
	}
}

// subcommands maps names to implementations; run dispatches through it
// and the unknown-subcommand path mines it for suggestions.
var subcommands = map[string]func([]string) error{
	"info":        cmdInfo,
	"scoap":       cmdScoap,
	"atpg":        cmdATPG,
	"compact":     cmdCompact,
	"faultsim":    cmdFaultSim,
	"scan":        cmdScan,
	"bilbo":       cmdBILBO,
	"syndrome":    cmdSyndrome,
	"walsh":       cmdWalsh,
	"lfsr":        cmdLFSR,
	"bench":       cmdBench,
	"bridge":      cmdBridge,
	"cmos":        cmdCMOS,
	"seqtest":     cmdSeqTest,
	"diagnose":    cmdDiagnose,
	"advise":      cmdAdvise,
	"profile":     cmdProfile,
	"experiments": cmdExperiments,
	"fuzz":        cmdFuzz,
	"watch":       cmdWatch,
}

func run(args []string) error {
	args, stats := stripStatsFlag(args)
	if stats {
		defer func() {
			fmt.Fprint(os.Stderr, "\n-- telemetry --\n"+telemetry.Default().Snapshot().Summary())
		}()
	}
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	if fn, ok := subcommands[cmd]; ok {
		return fn(rest)
	}
	switch cmd {
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	if near := closestSubcommand(cmd); near != "" {
		return fmt.Errorf("unknown subcommand %q (did you mean %q?)", cmd, near)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// parseFlags parses like fs.Parse but accepts flags after positional
// arguments (the flag package stops at the first non-flag token, which
// would silently drop `dftc atpg file.bench -json`).
func parseFlags(fs *flag.FlagSet, args []string) error {
	var pos []string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return err
		}
		args = fs.Args()
		if len(args) == 0 {
			break
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
	return fs.Parse(pos)
}

// timeoutContext wraps Background with the -timeout flag: zero means
// no deadline. The CLI and the dftd service share the same
// context-cancellation path through atpg and the fault engine, so a
// run that blows its budget exits with a context error instead of
// hanging the terminal (or the job queue).
func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

// stripStatsFlag removes every bare -stats/--stats token so the flag
// works globally, before or after the subcommand.
func stripStatsFlag(args []string) (out []string, stats bool) {
	out = args[:0:0]
	for _, a := range args {
		if a == "-stats" || a == "--stats" {
			stats = true
			continue
		}
		out = append(out, a)
	}
	return out, stats
}

// closestSubcommand returns the known subcommand nearest to cmd by
// edit distance, or "" when nothing is plausibly close.
func closestSubcommand(cmd string) string {
	best, bestDist := "", len(cmd)/2+1 // allow at most ~half the name wrong
	for name := range subcommands {
		if d := editDistance(cmd, name); d < bestDist {
			best, bestDist = name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func usage() {
	fmt.Fprintln(os.Stderr, `dftc — design-for-testability toolkit (Williams & Parker 1982 reproduction)

subcommands:
  info <f.bench> [-top N] [-json]     structural summary; -json adds a
                                      testability section with per-net
                                      SCOAP + COP metrics
  scoap <f.bench> [-top N]            SCOAP testability analysis
  atpg <f.bench> [flags]              deterministic test generation
                                      (-compact off|reverse|static|dynamic|full
                                      shrinks the set before reporting)
  compact <f.bench> [flags]           compact a test set: -in cubes.txt reads
                                      01X cubes (one per line), -random N
                                      compacts a seeded random set; kept
                                      patterns print to stdout or -out file
  faultsim <f.bench> [flags]          random-pattern fault grading
  scan <f.bench> [-style lssd|mux]    scan insertion, emits .bench
  bilbo <c1> <c2> [-patterns N]       BILBO self-test coverage
  syndrome <f.bench>                  syndrome measurement per output
  walsh <f.bench> [-out K]            C0 / C_all measurement
  lfsr [-width N] [-clocks K]         maximal LFSR state sequence
  bench <gen> [args...]               emit a library circuit (c17, adder,
                                      mult, parity, decoder, mux, cmp, maj,
                                      alu74181, alu74181x, counter, shift,
                                      johnson, gray, hardcore)
  bridge <f.bench> [flags]            bridging-fault coverage of an SSA set
  cmos <f.bench>                      stuck-open two-pattern testing
  seqtest <f.bench> [-frames N]       sequential ATPG (time-frame expansion)
  diagnose <f.bench> [flags]          fault-dictionary diagnosis: build a
                                      compact pass/fail dictionary over the
                                      collapsed faults (-save/-load persist
                                      it), then -inject or -signature maps an
                                      observed failure to ranked candidates
  advise <f.bench> [flags]            closed-loop DFT advisor: probe with
                                      bounded ATPG/fault-sim, score test
                                      points and partial scan by predicted
                                      gain per gate, apply the cheapest,
                                      repeat to -target within -budget;
                                      -out saves the machine-readable plan
  profile <f.bench> [-seed S] [-json] standard workload with per-phase timing
  experiments [id] [-json]            regenerate paper tables/figures
  fuzz [-rounds N] [-seeds a,b,c]     differential fuzz: every kernel/backend
                                      config must agree; prints replayable
                                      repros for divergences
  watch <server> <job-id>             follow a dftd job's live event stream
                                      (queue position, phases, progress);
                                      exits with the job's fate

global flags:
  -stats            dump telemetry (counters/timers/trace) to stderr at exit
  -json             on atpg/faultsim/profile/experiments: machine-readable
                    run report (schema dft.run-report/v1) on stdout

fault-simulation engine (atpg/faultsim):
  -workers N        shard the fault list across N workers (0 = all CPUs);
                    results are bit-identical for every worker count
  -engine B         faultsim backend: auto (default), parallel (64-wide
                    PPSFP), faultparallel (64 faulty machines per word),
                    cpt (critical-path tracing), deductive (Armstrong
                    fault lists), serial
  -kernel K         good-machine kernel: compiled (default; flat opcode
                    programs) or interp (levelized interpreter)
  -timeout D        abort the run after duration D (e.g. 30s, 5m); exits
                    non-zero with a context error. 0 (default) = no limit`)
}

func loadDesign(path string) (*core.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(path, f)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	top := fs.Int("top", 10, "hardest nets in the testability section")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *jsonOut {
		view := d.View()
		rep := telemetry.NewReport("dftc", "info", fs.Arg(0))
		rep.Config = map[string]any{"top": *top}
		rep.Results = map[string]any{
			"gates":   d.Circuit.NumGates(),
			"dffs":    d.Circuit.NumDFFs(),
			"inputs":  len(d.Circuit.PIs),
			"outputs": len(d.Circuit.POs),
			"targets": len(d.Faults()),
			"testability": testability.ReportSection(
				d.Circuit, view.Inputs, view.Outputs, d.Faults(), *top),
		}
		return rep.Finish(telemetry.Default()).WriteJSON(os.Stdout)
	}
	fmt.Println(d.Circuit.Stats())
	fmt.Printf("collapsed fault targets: %d\n", len(d.Faults()))
	for _, diag := range d.Diagnostics() {
		fmt.Println(diag)
	}
	return nil
}

func cmdScoap(args []string) error {
	fs := flag.NewFlagSet("scoap", flag.ContinueOnError)
	top := fs.Int("top", 10, "hardest nets to list")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("scoap needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	sum, hardest := d.Analyze(*top)
	fmt.Println(sum)
	fmt.Printf("%-20s %8s %8s %8s\n", "net", "CC0", "CC1", "CO")
	for _, h := range hardest {
		fmt.Printf("%-20s %8d %8d %8d\n", h.Name, h.CC0, h.CC1, h.CO)
	}
	return nil
}

func cmdATPG(args []string) error {
	fs := flag.NewFlagSet("atpg", flag.ContinueOnError)
	engine := fs.String("engine", "podem", "podem or dalg")
	scan := fs.Bool("scan", false, "assume full scan (LSSD view)")
	random := fs.Int("random", 0, "random-first pattern budget")
	compactFlag := fs.String("compact", "off", "compaction mode: off, reverse, static, dynamic or full")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "fault-sharding workers (0 = all CPUs)")
	kernel := fs.String("kernel", "compiled", "simulation kernel: compiled or interp")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("atpg needs one .bench file")
	}
	k, err := sim.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	sim.SetDefaultKernel(k)
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return err
		}
	}
	e := atpg.EnginePodem
	if *engine == "dalg" {
		e = atpg.EngineDAlg
	} else if *engine != "podem" {
		return fmt.Errorf("unknown engine %q", *engine)
	}
	mode, err := compact.ParseMode(*compactFlag)
	if err != nil {
		return err
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	ts, err := d.GenerateContext(ctx, core.GenerateOptions{
		Engine: e, RandomFirst: *random, Seed: *seed, CompactMode: mode,
		Workers: *workers,
	})
	if err != nil {
		return fmt.Errorf("atpg on %s gave up after -timeout %v: %w", fs.Arg(0), *timeout, err)
	}
	if *jsonOut {
		rep := telemetry.NewReport("dftc", "atpg", fs.Arg(0))
		rep.Config = map[string]any{
			"engine":  *engine,
			"scan":    *scan,
			"random":  *random,
			"compact": mode.String(),
			"seed":    *seed,
			"workers": *workers,
			"kernel":  k.String(),
		}
		rep.Results = map[string]any{
			"patterns":     len(ts.Patterns),
			"coverage":     ts.Coverage,
			"raw_coverage": ts.RawCover,
			"untestable":   ts.Untestable,
			"aborted":      ts.Aborted,
			"targets":      ts.TargetN,
			"gates":        d.Circuit.NumGates(),
			"dffs":         d.Circuit.NumDFFs(),
		}
		if st := ts.Compaction; st != nil {
			rep.Results["patterns_in"] = st.PatternsIn
			rep.Results["patterns_out"] = st.PatternsOut
			rep.Results["compact_ratio"] = st.Ratio
			rep.Results["replay_passes"] = st.ReplayPasses
			rep.Results["merge_attempts"] = st.MergeAttempts
			rep.Results["merge_hits"] = st.MergeHits
		}
		return rep.Finish(telemetry.Default()).WriteJSON(os.Stdout)
	}
	fmt.Print(d.BuildReport(ts))
	if st := ts.Compaction; st != nil {
		note := "coverage unchanged"
		if st.DetectedOut > st.DetectedIn {
			note = fmt.Sprintf("coverage +%d faults", st.DetectedOut-st.DetectedIn)
		}
		fmt.Printf("compact   : patterns %d -> %d (%.1fx, %d replay passes), %s\n",
			st.PatternsIn, st.PatternsOut, st.Ratio, st.ReplayPasses, note)
	}
	if ts.Untestable > 0 {
		fmt.Printf("untestable (redundant) faults: %d\n", ts.Untestable)
	}
	if ts.Aborted > 0 {
		fmt.Printf("aborted faults: %d\n", ts.Aborted)
	}
	return nil
}

func cmdFaultSim(args []string) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	n := fs.Int("patterns", 1024, "random patterns to grade")
	seed := fs.Int64("seed", 1, "random seed")
	scan := fs.Bool("scan", false, "assume full scan view")
	engine := fs.String("engine", "auto", "backend: auto, parallel, faultparallel, cpt, deductive or serial")
	workers := fs.Int("workers", 0, "fault-sharding workers (0 = all CPUs)")
	kernel := fs.String("kernel", "compiled", "simulation kernel: compiled or interp")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("faultsim needs one .bench file")
	}
	backend, err := fault.ParseBackend(*engine)
	if err != nil {
		return err
	}
	k, err := sim.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	sim.SetDefaultKernel(k)
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return err
		}
	}
	view := d.View()
	rng := rand.New(rand.NewSource(*seed))
	pats := make([][]bool, *n)
	for i := range pats {
		p := make([]bool, len(view.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	res, err := fault.Simulate(ctx, d.Circuit, d.Faults(), pats, fault.Options{
		Backend: backend,
		Workers: *workers,
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
	})
	if err != nil {
		return fmt.Errorf("faultsim on %s gave up after -timeout %v: %w", fs.Arg(0), *timeout, err)
	}
	// A pattern is kept when it was the first detector of some fault —
	// the same set reverse-order compaction would retain.
	kept := make(map[int]bool)
	for _, pi := range res.DetectedBy {
		if pi >= 0 {
			kept[pi] = true
		}
	}
	if *jsonOut {
		rep := telemetry.NewReport("dftc", "faultsim", fs.Arg(0))
		rep.Config = map[string]any{
			"patterns": *n, "seed": *seed, "scan": *scan,
			"engine": backend.String(), "workers": *workers,
			"kernel": k.String(),
		}
		rep.Results = map[string]any{
			"coverage":      res.Coverage(),
			"kept_patterns": len(kept),
			"targets":       len(res.Faults),
		}
		if p := sim.ActiveProgram(d.Circuit); p != nil {
			rep.Results["folded_gates"] = p.Folded()
			rep.Results["hashed_gates"] = p.Hashed()
		}
		return rep.Finish(telemetry.Default()).WriteJSON(os.Stdout)
	}
	fmt.Printf("applied %d random patterns: coverage %.2f%% with %d kept patterns\n",
		*n, res.Coverage()*100, len(kept))
	return nil
}

func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	style := fs.String("style", "lssd", "lssd or mux")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("scan needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	st := core.StyleLSSD
	if *style == "mux" {
		st = core.StyleMuxScan
	} else if *style != "lssd" {
		return fmt.Errorf("unknown style %q", *style)
	}
	if err := d.ApplyScan(st); err != nil {
		return err
	}
	sc := d.Scan()
	fmt.Fprintf(os.Stderr, "chain length %d, overhead %.1f%%\n",
		sc.ChainLength(), 100*lssd.Overhead(d.Circuit, sc.Scanned))
	return logic.WriteBench(os.Stdout, sc.Scanned)
}

func cmdBILBO(args []string) error {
	fs := flag.NewFlagSet("bilbo", flag.ContinueOnError)
	patterns := fs.Int("patterns", 255, "PN patterns per session")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("bilbo needs two .bench files")
	}
	d1, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	d2, err := loadDesign(fs.Arg(1))
	if err != nil {
		return err
	}
	cs, err := core.SelfTestPlan(d1.Circuit, d2.Circuit, *patterns)
	if err != nil {
		return err
	}
	fmt.Printf("BILBO self-test, %d patterns: %d/%d faults (%.2f%%)\n",
		cs.Patterns, cs.Detected, cs.Total, cs.Coverage()*100)
	scanBits, bilboBits := bilbo.DataVolume(len(d1.Circuit.PIs), *patterns)
	fmt.Printf("test data volume: %d bits via scan vs %d bits via BILBO\n", scanBits, bilboBits)
	return nil
}

func cmdSyndrome(args []string) error {
	fs := flag.NewFlagSet("syndrome", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("syndrome needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	counts, syn := syndrome.Syndromes(d.Circuit)
	for j := range counts {
		fmt.Printf("output %-16s K=%-8d S=%.4f\n", d.Circuit.NameOf(d.Circuit.POs[j]), counts[j], syn[j])
	}
	cl := fault.CollapseEquiv(d.Circuit, fault.Universe(d.Circuit))
	un := syndrome.Untestable(syndrome.Classify(d.Circuit, cl.Reps))
	fmt.Printf("syndrome-untestable fault classes: %d of %d\n", len(un), len(cl.Reps))
	return nil
}

func cmdWalsh(args []string) error {
	fs := flag.NewFlagSet("walsh", flag.ContinueOnError)
	out := fs.Int("out", 0, "output index")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("walsh needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *out < 0 || *out >= len(d.Circuit.POs) {
		return fmt.Errorf("output %d out of range", *out)
	}
	fmt.Printf("C_0   = %d\n", walsh.C0(d.Circuit, *out, nil))
	fmt.Printf("C_all = %d\n", walsh.CAll(d.Circuit, *out, nil))
	checked, detected, goodCAll := walsh.InputFaultTheorem(d.Circuit, *out)
	fmt.Printf("input stuck-at faults detected via C_all: %d/%d (C_all=%d)\n", detected, checked, goodCAll)
	return nil
}

func cmdLFSR(args []string) error {
	fs := flag.NewFlagSet("lfsr", flag.ContinueOnError)
	width := fs.Int("width", 3, "register width")
	clocks := fs.Int("clocks", 10, "clocks to print")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	l := lfsr.NewMaximal(*width)
	l.SetState(1)
	taps, _ := lfsr.MaximalTaps(*width)
	fmt.Printf("width %d, taps %v, period %d\n", *width, taps, (1<<uint(*width))-1)
	for i := 0; i < *clocks; i++ {
		l.Clock()
		fmt.Printf("%0*b\n", *width, l.State())
	}
	return nil
}

func cmdBench(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("bench needs a generator name")
	}
	gen, rest := args[0], args[1:]
	n := 0
	if len(rest) > 0 {
		if v, err := strconv.Atoi(rest[0]); err == nil {
			n = v
		}
	}
	c, err := circuits.Builtin(gen, n)
	if err != nil {
		return err
	}
	return logic.WriteBench(os.Stdout, c)
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var todo []experiments.Experiment
	switch fs.NArg() {
	case 0:
		todo = experiments.All()
	case 1:
		e, ok := experiments.ByID(fs.Arg(0))
		if !ok {
			return fmt.Errorf("unknown experiment %q (try: dftc experiments)", fs.Arg(0))
		}
		todo = []experiments.Experiment{e}
	default:
		return fmt.Errorf("experiments takes at most one id")
	}
	if *jsonOut {
		rep := telemetry.NewReport("dftc", "experiments", "")
		var outs []map[string]any
		for _, e := range todo {
			outs = append(outs, map[string]any{
				"id":       e.ID,
				"title":    e.Title,
				"rendered": e.Run().Render(),
			})
		}
		rep.Results = map[string]any{"experiments": outs}
		return rep.Finish(telemetry.Default()).WriteJSON(os.Stdout)
	}
	for _, e := range todo {
		fmt.Println(e.Run().Render())
	}
	return nil
}
