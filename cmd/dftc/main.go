// Command dftc is the toolkit's command-line front end: circuit
// inspection, SCOAP testability analysis, ATPG, fault simulation, scan
// insertion, BILBO self-test planning, syndrome/Walsh measurement,
// LFSR utilities, and regeneration of every paper experiment.
//
// Usage:
//
//	dftc info      <file.bench>
//	dftc scoap     <file.bench> [-top N]
//	dftc atpg      <file.bench> [-engine podem|dalg] [-scan] [-random N] [-compact]
//	dftc faultsim  <file.bench> [-patterns N] [-seed S] [-scan]
//	dftc scan      <file.bench> [-style lssd|mux]
//	dftc bilbo     <c1.bench> <c2.bench> [-patterns N]
//	dftc syndrome  <file.bench>
//	dftc walsh     <file.bench> [-out K]
//	dftc lfsr      [-width N] [-clocks K]
//	dftc bench     <generator> [args...]   (emit a library circuit as .bench)
//	dftc experiments [id]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"dft/internal/atpg"
	"dft/internal/bilbo"
	"dft/internal/circuits"
	"dft/internal/core"
	"dft/internal/experiments"
	"dft/internal/fault"
	"dft/internal/lfsr"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/syndrome"
	"dft/internal/walsh"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dftc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "info":
		return cmdInfo(rest)
	case "scoap":
		return cmdScoap(rest)
	case "atpg":
		return cmdATPG(rest)
	case "faultsim":
		return cmdFaultSim(rest)
	case "scan":
		return cmdScan(rest)
	case "bilbo":
		return cmdBILBO(rest)
	case "syndrome":
		return cmdSyndrome(rest)
	case "walsh":
		return cmdWalsh(rest)
	case "lfsr":
		return cmdLFSR(rest)
	case "bench":
		return cmdBench(rest)
	case "bridge":
		return cmdBridge(rest)
	case "cmos":
		return cmdCMOS(rest)
	case "seqtest":
		return cmdSeqTest(rest)
	case "diagnose":
		return cmdDiagnose(rest)
	case "experiments":
		return cmdExperiments(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", cmd)
}

func usage() {
	fmt.Fprintln(os.Stderr, `dftc — design-for-testability toolkit (Williams & Parker 1982 reproduction)

subcommands:
  info <f.bench>                      structural summary
  scoap <f.bench> [-top N]            SCOAP testability analysis
  atpg <f.bench> [flags]              deterministic test generation
  faultsim <f.bench> [flags]          random-pattern fault grading
  scan <f.bench> [-style lssd|mux]    scan insertion, emits .bench
  bilbo <c1> <c2> [-patterns N]       BILBO self-test coverage
  syndrome <f.bench>                  syndrome measurement per output
  walsh <f.bench> [-out K]            C0 / C_all measurement
  lfsr [-width N] [-clocks K]         maximal LFSR state sequence
  bench <gen> [args...]               emit a library circuit (c17, adder,
                                      mult, parity, decoder, mux, cmp, maj,
                                      alu74181, alu74181x, counter, shift,
                                      johnson, gray)
  bridge <f.bench> [flags]            bridging-fault coverage of an SSA set
  cmos <f.bench>                      stuck-open two-pattern testing
  seqtest <f.bench> [-frames N]       sequential ATPG (time-frame expansion)
  diagnose <f.bench> [flags]          fault-dictionary resolution
  experiments [id]                    regenerate paper tables/figures`)
}

func loadDesign(path string) (*core.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(path, f)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Println(d.Circuit.Stats())
	fmt.Printf("collapsed fault targets: %d\n", len(d.Faults()))
	return nil
}

func cmdScoap(args []string) error {
	fs := flag.NewFlagSet("scoap", flag.ContinueOnError)
	top := fs.Int("top", 10, "hardest nets to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("scoap needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	sum, hardest := d.Analyze(*top)
	fmt.Println(sum)
	fmt.Printf("%-20s %8s %8s %8s\n", "net", "CC0", "CC1", "CO")
	for _, h := range hardest {
		fmt.Printf("%-20s %8d %8d %8d\n", h.Name, h.CC0, h.CC1, h.CO)
	}
	return nil
}

func cmdATPG(args []string) error {
	fs := flag.NewFlagSet("atpg", flag.ContinueOnError)
	engine := fs.String("engine", "podem", "podem or dalg")
	scan := fs.Bool("scan", false, "assume full scan (LSSD view)")
	random := fs.Int("random", 0, "random-first pattern budget")
	compact := fs.Bool("compact", false, "reverse-order compaction")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("atpg needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return err
		}
	}
	e := atpg.EnginePodem
	if *engine == "dalg" {
		e = atpg.EngineDAlg
	} else if *engine != "podem" {
		return fmt.Errorf("unknown engine %q", *engine)
	}
	ts := d.Generate(core.GenerateOptions{
		Engine: e, RandomFirst: *random, Seed: *seed, Compact: *compact,
	})
	fmt.Print(d.BuildReport(ts))
	if ts.Untestable > 0 {
		fmt.Printf("untestable (redundant) faults: %d\n", ts.Untestable)
	}
	if ts.Aborted > 0 {
		fmt.Printf("aborted faults: %d\n", ts.Aborted)
	}
	return nil
}

func cmdFaultSim(args []string) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	n := fs.Int("patterns", 1024, "random patterns to grade")
	seed := fs.Int64("seed", 1, "random seed")
	scan := fs.Bool("scan", false, "assume full scan view")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("faultsim needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return err
		}
	}
	ts := d.RandomTests(*n, *seed)
	fmt.Printf("applied %d random patterns: coverage %.2f%% with %d kept patterns\n",
		*n, ts.Coverage*100, len(ts.Patterns))
	return nil
}

func cmdScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	style := fs.String("style", "lssd", "lssd or mux")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("scan needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	st := core.StyleLSSD
	if *style == "mux" {
		st = core.StyleMuxScan
	} else if *style != "lssd" {
		return fmt.Errorf("unknown style %q", *style)
	}
	if err := d.ApplyScan(st); err != nil {
		return err
	}
	sc := d.Scan()
	fmt.Fprintf(os.Stderr, "chain length %d, overhead %.1f%%\n",
		sc.ChainLength(), 100*lssd.Overhead(d.Circuit, sc.Scanned))
	return logic.WriteBench(os.Stdout, sc.Scanned)
}

func cmdBILBO(args []string) error {
	fs := flag.NewFlagSet("bilbo", flag.ContinueOnError)
	patterns := fs.Int("patterns", 255, "PN patterns per session")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("bilbo needs two .bench files")
	}
	d1, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	d2, err := loadDesign(fs.Arg(1))
	if err != nil {
		return err
	}
	cs, err := core.SelfTestPlan(d1.Circuit, d2.Circuit, *patterns)
	if err != nil {
		return err
	}
	fmt.Printf("BILBO self-test, %d patterns: %d/%d faults (%.2f%%)\n",
		cs.Patterns, cs.Detected, cs.Total, cs.Coverage()*100)
	scanBits, bilboBits := bilbo.DataVolume(len(d1.Circuit.PIs), *patterns)
	fmt.Printf("test data volume: %d bits via scan vs %d bits via BILBO\n", scanBits, bilboBits)
	return nil
}

func cmdSyndrome(args []string) error {
	fs := flag.NewFlagSet("syndrome", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("syndrome needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	counts, syn := syndrome.Syndromes(d.Circuit)
	for j := range counts {
		fmt.Printf("output %-16s K=%-8d S=%.4f\n", d.Circuit.NameOf(d.Circuit.POs[j]), counts[j], syn[j])
	}
	cl := fault.CollapseEquiv(d.Circuit, fault.Universe(d.Circuit))
	un := syndrome.Untestable(syndrome.Classify(d.Circuit, cl.Reps))
	fmt.Printf("syndrome-untestable fault classes: %d of %d\n", len(un), len(cl.Reps))
	return nil
}

func cmdWalsh(args []string) error {
	fs := flag.NewFlagSet("walsh", flag.ContinueOnError)
	out := fs.Int("out", 0, "output index")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("walsh needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *out < 0 || *out >= len(d.Circuit.POs) {
		return fmt.Errorf("output %d out of range", *out)
	}
	fmt.Printf("C_0   = %d\n", walsh.C0(d.Circuit, *out, nil))
	fmt.Printf("C_all = %d\n", walsh.CAll(d.Circuit, *out, nil))
	checked, detected, goodCAll := walsh.InputFaultTheorem(d.Circuit, *out)
	fmt.Printf("input stuck-at faults detected via C_all: %d/%d (C_all=%d)\n", detected, checked, goodCAll)
	return nil
}

func cmdLFSR(args []string) error {
	fs := flag.NewFlagSet("lfsr", flag.ContinueOnError)
	width := fs.Int("width", 3, "register width")
	clocks := fs.Int("clocks", 10, "clocks to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l := lfsr.NewMaximal(*width)
	l.SetState(1)
	taps, _ := lfsr.MaximalTaps(*width)
	fmt.Printf("width %d, taps %v, period %d\n", *width, taps, (1<<uint(*width))-1)
	for i := 0; i < *clocks; i++ {
		l.Clock()
		fmt.Printf("%0*b\n", *width, l.State())
	}
	return nil
}

func cmdBench(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("bench needs a generator name")
	}
	gen, rest := args[0], args[1:]
	argN := func(def int) int {
		if len(rest) > 0 {
			if v, err := strconv.Atoi(rest[0]); err == nil {
				return v
			}
		}
		return def
	}
	var c *logic.Circuit
	switch gen {
	case "c17":
		c = circuits.C17()
	case "adder":
		c = circuits.RippleAdder(argN(8))
	case "mult":
		c = circuits.ArrayMultiplier(argN(4))
	case "parity":
		c = circuits.ParityTree(argN(8))
	case "decoder":
		c = circuits.Decoder(argN(3))
	case "mux":
		c = circuits.Mux(argN(2))
	case "cmp":
		c = circuits.Comparator(argN(4))
	case "maj":
		c = circuits.Majority(argN(3))
	case "alu74181":
		c = circuits.ALU74181()
	case "alu74181x":
		c = circuits.Cascade74181(argN(2))
	case "counter":
		c = circuits.Counter(argN(8))
	case "shift":
		c = circuits.ShiftRegister(argN(8))
	case "johnson":
		c = circuits.JohnsonCounter(argN(4))
	case "gray":
		c = circuits.GrayCounter(argN(4))
	default:
		return fmt.Errorf("unknown generator %q", gen)
	}
	return logic.WriteBench(os.Stdout, c)
}

func cmdExperiments(args []string) error {
	if len(args) == 1 {
		e, ok := experiments.ByID(args[0])
		if !ok {
			return fmt.Errorf("unknown experiment %q (try: dftc experiments)", args[0])
		}
		fmt.Println(e.Run().Render())
		return nil
	}
	for _, e := range experiments.All() {
		fmt.Println(e.Run().Render())
	}
	return nil
}
