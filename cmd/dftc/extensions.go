package main

import (
	"flag"
	"fmt"
	"math/rand"

	"dft/internal/atpg"
	"dft/internal/bridge"
	"dft/internal/cmos"
	"dft/internal/core"
	"dft/internal/diagnose"
	"dft/internal/fault"
	"dft/internal/seqatpg"
)

// cmdBridge grades a stuck-at test set against a sampled bridging-fault
// universe.
func cmdBridge(args []string) error {
	fs := flag.NewFlagSet("bridge", flag.ContinueOnError)
	limit := fs.Int("limit", 200, "bridge pairs to sample")
	window := fs.Int("window", 1, "level-adjacency window")
	seed := fs.Int64("seed", 9, "sampling seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("bridge needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	gen := d.Generate(defaultGenOptions())
	rng := rand.New(rand.NewSource(*seed))
	bridges := bridge.Universe(d.Circuit, *window, *limit, rng)
	res := bridge.Grade(d.Circuit, bridges, gen.Patterns)
	fmt.Printf("stuck-at coverage of generated set: %.2f%%\n", gen.RawCover*100)
	fmt.Printf("bridging faults detected: %d/%d (%.1f%%)\n",
		res.Detected, res.Total, res.Coverage()*100)
	return nil
}

// cmdCMOS reports stuck-open behavior and two-pattern coverage.
func cmdCMOS(args []string) error {
	fs := flag.NewFlagSet("cmos", flag.ContinueOnError)
	seed := fs.Int64("seed", 5, "search seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cmos needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	u := cmos.Universe(d.Circuit)
	if len(u) == 0 {
		return fmt.Errorf("no NAND/NOR/NOT gates: the stuck-open model has nothing to do")
	}
	rng := rand.New(rand.NewSource(*seed))
	det, gen := cmos.GradeTwoPattern(d.Circuit, u, rng)
	fmt.Printf("stuck-open universe: %d faults\n", len(u))
	fmt.Printf("two-pattern tests generated: %d, detecting: %d\n", gen, det)
	return nil
}

// cmdSeqTest runs bounded time-frame-expansion ATPG on an unscanned
// sequential circuit.
func cmdSeqTest(args []string) error {
	fs := flag.NewFlagSet("seqtest", flag.ContinueOnError)
	frames := fs.Int("frames", 8, "maximum unrolling depth")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("seqtest needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if !d.Circuit.IsSequential() {
		return fmt.Errorf("seqtest needs a sequential circuit; use atpg for combinational ones")
	}
	cl := fault.CollapseEquiv(d.Circuit, fault.Universe(d.Circuit))
	det, depths := seqatpg.CoverageWithinFrames(d.Circuit, cl.Reps, seqatpg.Config{MaxFrames: *frames})
	fmt.Printf("faults testable within %d frames: %d/%d\n", *frames, det, len(cl.Reps))
	for depth := 1; depth <= *frames; depth++ {
		if n := depths[depth]; n > 0 {
			fmt.Printf("  depth %2d: %d faults\n", depth, n)
		}
	}
	return nil
}

// cmdDiagnose builds a fault dictionary and reports its resolution.
func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	patterns := fs.Int("patterns", 64, "random patterns for the dictionary")
	seed := fs.Int64("seed", 6, "pattern seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("diagnose needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	u := fault.Universe(d.Circuit)
	rng := rand.New(rand.NewSource(*seed))
	pats := make([][]bool, *patterns)
	for i := range pats {
		p := make([]bool, len(d.Circuit.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	dict := diagnose.Build(d.Circuit, u, pats)
	r := dict.Resolution()
	fmt.Printf("faults: %d, patterns: %d\n", len(u), *patterns)
	fmt.Printf("diagnosis classes: %d (mean size %.2f, max %d, invisible %d)\n",
		r.Classes, r.MeanSize, r.MaxSize, r.Undetected)
	return nil
}

func defaultGenOptions() core.GenerateOptions {
	return core.GenerateOptions{Engine: atpg.EnginePodem, RandomFirst: 128, Seed: 1}
}
