package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dft/internal/atpg"
	"dft/internal/bridge"
	"dft/internal/cmos"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/diagnose"
	"dft/internal/fault"
	"dft/internal/seqatpg"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// cmdBridge grades a stuck-at test set against a sampled bridging-fault
// universe.
func cmdBridge(args []string) error {
	fs := flag.NewFlagSet("bridge", flag.ContinueOnError)
	limit := fs.Int("limit", 200, "bridge pairs to sample")
	window := fs.Int("window", 1, "level-adjacency window")
	seed := fs.Int64("seed", 9, "sampling seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("bridge needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	gen := d.Generate(defaultGenOptions())
	rng := rand.New(rand.NewSource(*seed))
	bridges := bridge.Universe(d.Circuit, *window, *limit, rng)
	res := bridge.Grade(d.Circuit, bridges, gen.Patterns)
	fmt.Printf("stuck-at coverage of generated set: %.2f%%\n", gen.RawCover*100)
	fmt.Printf("bridging faults detected: %d/%d (%.1f%%)\n",
		res.Detected, res.Total, res.Coverage()*100)
	return nil
}

// cmdCMOS reports stuck-open behavior and two-pattern coverage.
func cmdCMOS(args []string) error {
	fs := flag.NewFlagSet("cmos", flag.ContinueOnError)
	seed := fs.Int64("seed", 5, "search seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cmos needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	u := cmos.Universe(d.Circuit)
	if len(u) == 0 {
		return fmt.Errorf("no NAND/NOR/NOT gates: the stuck-open model has nothing to do")
	}
	rng := rand.New(rand.NewSource(*seed))
	det, gen := cmos.GradeTwoPattern(d.Circuit, u, rng)
	fmt.Printf("stuck-open universe: %d faults\n", len(u))
	fmt.Printf("two-pattern tests generated: %d, detecting: %d\n", gen, det)
	return nil
}

// cmdSeqTest runs bounded time-frame-expansion ATPG on an unscanned
// sequential circuit.
func cmdSeqTest(args []string) error {
	fs := flag.NewFlagSet("seqtest", flag.ContinueOnError)
	frames := fs.Int("frames", 8, "maximum unrolling depth")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("seqtest needs one .bench file")
	}
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if !d.Circuit.IsSequential() {
		return fmt.Errorf("seqtest needs a sequential circuit; use atpg for combinational ones")
	}
	cl := fault.CollapseEquiv(d.Circuit, fault.Universe(d.Circuit))
	det, depths := seqatpg.CoverageWithinFrames(d.Circuit, cl.Reps, seqatpg.Config{MaxFrames: *frames})
	fmt.Printf("faults testable within %d frames: %d/%d\n", *frames, det, len(cl.Reps))
	for depth := 1; depth <= *frames; depth++ {
		if n := depths[depth]; n > 0 {
			fmt.Printf("  depth %2d: %d faults\n", depth, n)
		}
	}
	return nil
}

// cmdDiagnose builds (or loads) a compact binary fault dictionary over
// the collapsed fault list and optionally diagnoses an observed
// failing signature or an injected fault against it.
func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	patterns := fs.Int("patterns", 64, "random patterns for the dictionary")
	seed := fs.Int64("seed", 6, "pattern seed")
	scan := fs.Bool("scan", false, "assume full scan view")
	engine := fs.String("engine", "auto", "grading backend: auto, parallel, faultparallel, cpt, deductive or serial")
	workers := fs.Int("workers", 0, "grading workers (0 = all CPUs)")
	kernel := fs.String("kernel", "compiled", "simulation kernel: compiled or interp")
	timeout := fs.Duration("timeout", 0, "abort the build after this long (0 = no limit)")
	compactFlag := fs.String("compact", "reverse", "compact the pattern set first: off, reverse, static, dynamic or full")
	full := fs.Bool("full", false, "also store the per-output full-response tier")
	save := fs.String("save", "", "write the dictionary to this file")
	load := fs.String("load", "", "load a saved dictionary instead of building")
	inject := fs.String("inject", "", `diagnose an injected fault, e.g. "g12 s-a-0"`)
	sigStr := fs.String("signature", "", "diagnose an observed pass/fail string ('1' = pattern failed)")
	top := fs.Int("top", 10, "ranked candidates to print")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("diagnose needs one .bench file")
	}
	if *inject != "" && *sigStr != "" {
		return fmt.Errorf("give -inject or -signature, not both")
	}
	backend, err := fault.ParseBackend(*engine)
	if err != nil {
		return err
	}
	k, err := sim.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	sim.SetDefaultKernel(k)
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return err
		}
	}
	view := d.View()
	// Diagnose over the collapsed representatives: structurally
	// equivalent faults can never be told apart at the pins, so grading
	// the raw universe would only pad every dictionary row and class
	// with known duplicates.
	cl := fault.CollapseEquiv(d.Circuit, fault.Universe(d.Circuit))
	dopt := diagnose.Options{
		Backend: backend,
		Workers: *workers,
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
		Full:    *full,
	}
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()

	var dict *diagnose.Dictionary
	var cst *compact.Stats
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		dict, err = diagnose.Decode(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := dict.Attach(d.Circuit, dopt); err != nil {
			return err
		}
	} else {
		mode, err := compact.ParseMode(*compactFlag)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(*seed))
		pats := make([][]bool, *patterns)
		for i := range pats {
			p := make([]bool, len(view.Inputs))
			for j := range p {
				p[j] = rng.Intn(2) == 1
			}
			pats[i] = p
		}
		if mode.Enabled() {
			pats, cst, err = compact.Patterns(ctx, d.Circuit, view, cl.Reps, pats, compact.Options{
				Mode: mode, Workers: *workers, Seed: *seed,
			})
			if err != nil {
				return err
			}
		}
		dict, err = diagnose.Build(ctx, d.Circuit, cl.Reps, pats, dopt)
		if err != nil {
			return fmt.Errorf("diagnose on %s gave up after -timeout %v: %w", fs.Arg(0), *timeout, err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := dict.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Resolve the observation, if any.
	var sig diagnose.Signature
	var ranked []diagnose.Candidate
	diagnosing := false
	injected := fault.Fault{}
	switch {
	case *inject != "":
		injected, err = fault.ParseFault(*inject)
		if err != nil {
			return err
		}
		if err := injected.Validate(d.Circuit); err != nil {
			return err
		}
		sig, err = dict.ObserveMachine(injected)
		if err != nil {
			return err
		}
		diagnosing = true
	case *sigStr != "":
		sig, err = diagnose.ParseSignature(*sigStr)
		if err != nil {
			return err
		}
		if sig.N > dict.NumPats {
			return fmt.Errorf("signature covers %d patterns, dictionary has %d", sig.N, dict.NumPats)
		}
		diagnosing = true
	}
	if diagnosing {
		ranked = dict.Rank(sig, *top)
	}
	r := dict.Resolution()

	if *jsonOut {
		rep := telemetry.NewReport("dftc", "diagnose", fs.Arg(0))
		rep.Config = map[string]any{
			"patterns": dict.NumPats, "seed": *seed, "scan": *scan,
			"engine": backend.String(), "workers": *workers,
			"kernel": k.String(), "compact": *compactFlag, "full": *full,
		}
		rep.Results = map[string]any{
			"universe":        len(cl.ClassOf),
			"collapsed":       len(cl.Reps),
			"dict_faults":     len(dict.Faults),
			"dict_patterns":   dict.NumPats,
			"dict_bytes":      dict.CompactBytes(),
			"dict_full_bytes": dict.FullBytes(),
			"classes":         r.Classes,
			"mean_class":      r.MeanSize,
			"max_class":       r.MaxSize,
			"undetected":      r.Undetected,
		}
		if cst != nil {
			rep.Results["patterns_in"] = cst.PatternsIn
			rep.Results["compact_ratio"] = cst.Ratio
		}
		if diagnosing {
			cands := make([]map[string]any, len(ranked))
			for i, cand := range ranked {
				cands[i] = map[string]any{
					"fault":    cand.Fault.String(),
					"name":     cand.Fault.Name(d.Circuit),
					"distance": cand.Distance,
				}
			}
			rep.Results["candidates"] = cands
			rep.Results["observed_fails"] = sig.Weight()
			rep.Results["observed_patterns"] = sig.N
			if sig.N == dict.NumPats {
				rep.Results["class_size"] = len(dict.Lookup(sig))
			}
		}
		return rep.Finish(telemetry.Default()).WriteJSON(os.Stdout)
	}

	fmt.Printf("faults: %d collapsed of %d total, patterns: %d\n",
		len(cl.Reps), len(cl.ClassOf), dict.NumPats)
	if cst != nil {
		fmt.Printf("compact   : patterns %d -> %d (%.1fx)\n", cst.PatternsIn, cst.PatternsOut, cst.Ratio)
	}
	bytesLine := fmt.Sprintf("dictionary: %d bytes compact", dict.CompactBytes())
	if dict.HasFull() {
		bytesLine += fmt.Sprintf(" + %d bytes full-response", dict.FullBytes())
	}
	fmt.Println(bytesLine)
	fmt.Printf("diagnosis classes: %d (mean size %.2f, max %d, invisible %d)\n",
		r.Classes, r.MeanSize, r.MaxSize, r.Undetected)
	if diagnosing {
		if *inject != "" {
			fmt.Printf("injected  : %s, %d/%d patterns fail\n", injected.Name(d.Circuit), sig.Weight(), sig.N)
		} else {
			fmt.Printf("observed  : %d/%d patterns fail\n", sig.Weight(), sig.N)
		}
		for i, cand := range ranked {
			fmt.Printf("  #%-2d d=%-3d %s\n", i+1, cand.Distance, cand.Fault.Name(d.Circuit))
		}
	}
	return nil
}

func defaultGenOptions() core.GenerateOptions {
	return core.GenerateOptions{Engine: atpg.EnginePodem, RandomFirst: 128, Seed: 1}
}
