package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// writeBench materializes a library circuit for CLI runs.
func writeBench(t *testing.T, c *logic.Circuit) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), c.Name+".bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := logic.WriteBench(f, c); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", runErr, out)
	}
	return out
}

// TestATPGJSONReport is the golden test for `dftc atpg -json`: the
// report must parse under the versioned schema and carry nonzero
// search and fault-simulation telemetry.
func TestATPGJSONReport(t *testing.T) {
	telemetry.Default().Reset()
	bench := writeBench(t, circuits.ALU74181())
	out := captureStdout(t, func() error {
		return run([]string{"atpg", bench, "-json", "-stats"})
	})
	rep, err := telemetry.ParseReport([]byte(out))
	if err != nil {
		t.Fatalf("ParseReport: %v\noutput:\n%s", err, out)
	}
	if rep.Tool != "dftc" || rep.Command != "atpg" || rep.Input != bench {
		t.Fatalf("report header = %q/%q/%q", rep.Tool, rep.Command, rep.Input)
	}
	if rep.Config["engine"] != "podem" {
		t.Fatalf("config engine = %v", rep.Config["engine"])
	}
	cov, ok := rep.Results["coverage"].(float64)
	if !ok || cov <= 0.9 {
		t.Fatalf("coverage = %v, want > 0.9", rep.Results["coverage"])
	}
	c := rep.Metrics.Counters
	for _, name := range []string{
		"atpg.backtracks",
		"atpg.podem.decisions",
		"atpg.faults.detected",
		"fault.sim.events",
		"fault.sim.patterns",
	} {
		if c[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, c[name])
		}
	}
	gen, ok := rep.Metrics.Timers["atpg.generate"]
	if !ok || gen.Count != 1 || gen.TotalNs <= 0 {
		t.Fatalf("atpg.generate timer = %+v", gen)
	}
}

// TestProfileJSONReport exercises the profile subcommand end to end.
func TestProfileJSONReport(t *testing.T) {
	telemetry.Default().Reset()
	bench := writeBench(t, circuits.C17())
	out := captureStdout(t, func() error {
		return run([]string{"profile", bench, "-json"})
	})
	rep, err := telemetry.ParseReport([]byte(out))
	if err != nil {
		t.Fatalf("ParseReport: %v\noutput:\n%s", err, out)
	}
	for _, phase := range []string{"load", "scoap", "faultsim", "atpg-podem", "atpg-dalg", "compact", "signature"} {
		ns, ok := rep.Results["phase_"+phase+"_ns"].(float64)
		if !ok || ns <= 0 {
			t.Errorf("phase %s duration = %v, want > 0", phase, rep.Results["phase_"+phase+"_ns"])
		}
		if _, ok := rep.Metrics.Timers["profile."+phase]; !ok {
			t.Errorf("missing span timer profile.%s", phase)
		}
	}
}

// TestUnknownSubcommandSuggests checks the did-you-mean path.
func TestUnknownSubcommandSuggests(t *testing.T) {
	err := run([]string{"atgp"})
	if err == nil || !strings.Contains(err.Error(), `did you mean "atpg"`) {
		t.Fatalf("err = %v, want atpg suggestion", err)
	}
	if err := run([]string{"zzzzqq"}); err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("err = %v, want no suggestion for gibberish", err)
	}
}

// TestStatsFlagStripping ensures -stats is accepted anywhere.
func TestStatsFlagStripping(t *testing.T) {
	args, stats := stripStatsFlag([]string{"-stats", "atpg", "f.bench", "--stats"})
	if !stats || len(args) != 2 || args[0] != "atpg" || args[1] != "f.bench" {
		t.Fatalf("stripStatsFlag = %v, %v", args, stats)
	}
	if _, stats := stripStatsFlag([]string{"atpg"}); stats {
		t.Fatal("phantom -stats")
	}
}

// TestFuzzJSONReport runs a short differential-fuzz sweep through the
// CLI and checks the run report: zero divergences on a clean tree and
// round accounting that matches the request.
func TestFuzzJSONReport(t *testing.T) {
	telemetry.Default().Reset()
	out := captureStdout(t, func() error {
		return run([]string{"fuzz", "-rounds", "6", "-patterns", "24", "-json"})
	})
	rep, err := telemetry.ParseReport([]byte(out))
	if err != nil {
		t.Fatalf("ParseReport: %v\noutput:\n%s", err, out)
	}
	if rep.Tool != "dftc" || rep.Command != "fuzz" {
		t.Fatalf("report header = %q/%q", rep.Tool, rep.Command)
	}
	if got := rep.Results["divergences"].(float64); got != 0 {
		t.Fatalf("divergences = %v, want 0\noutput:\n%s", got, out)
	}
	if got := rep.Results["rounds"].(float64); got != 6 {
		t.Fatalf("rounds = %v, want 6", got)
	}
	c := rep.Metrics.Counters
	if c["fuzz.rounds"] != 6 || c["fuzz.divergences"] != 0 {
		t.Fatalf("telemetry counters: rounds=%d divergences=%d", c["fuzz.rounds"], c["fuzz.divergences"])
	}
}

// TestFuzzSeedList covers the -seeds replay path and flag validation.
func TestFuzzSeedList(t *testing.T) {
	telemetry.Default().Reset()
	out := captureStdout(t, func() error {
		return run([]string{"fuzz", "-seeds", "3, 9,42", "-patterns", "16"})
	})
	if !strings.Contains(out, "3 rounds") || !strings.Contains(out, "0 divergences") {
		t.Fatalf("unexpected fuzz output: %s", out)
	}
	if err := run([]string{"fuzz", "-seeds", "3,x"}); err == nil || !strings.Contains(err.Error(), "bad seed") {
		t.Fatalf("err = %v, want bad-seed error", err)
	}
	if err := run([]string{"fuzz", "-rounds", "0"}); err == nil || !strings.Contains(err.Error(), "-rounds") {
		t.Fatalf("err = %v, want rounds validation error", err)
	}
}

// TestBadKernelFlagExits checks that a mistyped -kernel value makes the
// CLI fail with the did-you-mean message instead of silently running
// the default kernel.
func TestBadKernelFlagExits(t *testing.T) {
	bench := writeBench(t, circuits.C17())
	for _, cmd := range []string{"faultsim", "atpg"} {
		err := run([]string{cmd, bench, "-kernel", "compield"})
		if err == nil || !strings.Contains(err.Error(), `did you mean "compiled"`) {
			t.Fatalf("%s: err = %v, want kernel did-you-mean", cmd, err)
		}
	}
}

// TestTimeoutFlagAborts puts a microscopic -timeout on a large circuit:
// both subcommands must exit non-zero with a message naming the flag
// and the context error rather than running to completion.
func TestTimeoutFlagAborts(t *testing.T) {
	bench := writeBench(t, circuits.Cascade74181(4))
	for _, cmd := range []string{"atpg", "faultsim"} {
		err := run([]string{cmd, bench, "-timeout", "1ns"})
		if err == nil {
			t.Fatalf("%s: ran to completion under a 1ns deadline", cmd)
		}
		if !strings.Contains(err.Error(), "-timeout") ||
			!strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
			t.Fatalf("%s: err = %v, want -timeout + deadline-exceeded message", cmd, err)
		}
	}
}

// TestTimeoutFlagZeroRuns checks the default (no limit) still works.
func TestTimeoutFlagZeroRuns(t *testing.T) {
	bench := writeBench(t, circuits.C17())
	out := captureStdout(t, func() error {
		return run([]string{"faultsim", bench, "-patterns", "64", "-timeout", "0s"})
	})
	if !strings.Contains(out, "coverage") {
		t.Fatalf("faultsim output missing coverage: %s", out)
	}
}

// TestInfoPrintsLintWarnings feeds a .bench with a dangling net through
// the CLI and expects the shared linter's warning in the output.
func TestInfoPrintsLintWarnings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dangle.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ndead = NOT(a)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error { return run([]string{"info", path}) })
	if !strings.Contains(out, "dangling-net") || !strings.Contains(out, `"dead"`) {
		t.Fatalf("info output missing dangling-net warning:\n%s", out)
	}
}

// TestLoadRejectsInvalidBench: the Load path shares the linter, so a
// structurally broken netlist (2-input NOT) is rejected with a
// structured diagnostic even though the parser accepts it.
func TestLoadRejectsInvalidBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bench")
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"info", path})
	if err == nil || !strings.Contains(err.Error(), "width-mismatch") {
		t.Fatalf("err = %v, want width-mismatch rejection", err)
	}
}
