package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"
)

// watchEvent mirrors the service's JobEvent wire shape. Declared here
// rather than imported so the CLI stays a pure HTTP client of the
// documented API — the same coupling any third-party consumer has.
type watchEvent struct {
	Seq          int64  `json:"seq"`
	Type         string `json:"type"`
	State        string `json:"state,omitempty"`
	Position     int    `json:"position,omitempty"`
	Phase        string `json:"phase,omitempty"`
	Name         string `json:"name,omitempty"`
	Done         int64  `json:"done,omitempty"`
	Total        int64  `json:"total,omitempty"`
	Error        string `json:"error,omitempty"`
	CancelReason string `json:"cancel_reason,omitempty"`
}

// cmdWatch follows a dftd job's live event stream:
//
//	dftc watch <server> <job-id> [-json] [-retries N]
//
// It connects to GET /v1/jobs/{id}/events, renders queue position,
// phase transitions, progress ticks and the terminal state as they
// arrive, and reconnects with Last-Event-ID if the stream drops before
// the terminal event. The exit status reflects the job: done exits 0,
// failed or cancelled exits non-zero.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "print raw event JSON, one object per line (includes heartbeats)")
	retries := fs.Int("retries", 5, "reconnect attempts after a dropped stream")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("watch needs <server> <job-id>")
	}
	server, jobID := fs.Arg(0), fs.Arg(1)
	if !strings.Contains(server, "://") {
		server = "http://" + server
	}
	url := fmt.Sprintf("%s/v1/jobs/%s/events", strings.TrimRight(server, "/"), jobID)

	var lastSeq int64
	attempts := 0
	for {
		terminal, err := watchStream(url, &lastSeq, *jsonOut)
		if terminal != nil {
			return watchExit(terminal)
		}
		if err == nil {
			// Stream ended without a terminal event: the server closed the
			// log (e.g. hard stop). Nothing more will arrive.
			return fmt.Errorf("stream ended without a terminal event")
		}
		attempts++
		if attempts > *retries {
			return fmt.Errorf("stream lost after %d attempts: %w", attempts, err)
		}
		fmt.Fprintf(os.Stderr, "watch: stream dropped (%v), reconnecting after event %d\n", err, lastSeq)
		time.Sleep(time.Duration(attempts) * 200 * time.Millisecond)
	}
}

// watchStream opens one SSE connection and consumes events until the
// terminal event, EOF, or a transport error. It returns the terminal
// event if one arrived; lastSeq tracks resume position across calls.
func watchStream(url string, lastSeq *int64, jsonOut bool) (*watchEvent, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(*lastSeq))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var body errorEnvelope
		json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck // best-effort detail
		if body.Error != "" {
			return nil, fmt.Errorf("server: %s", body.Error)
		}
		return nil, fmt.Errorf("server answered %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case line == "" && data != "":
			var e watchEvent
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				return nil, fmt.Errorf("bad event payload: %w", err)
			}
			data = ""
			*lastSeq = e.Seq
			renderEvent(e, jsonOut)
			if e.Type == "end" {
				return &e, nil
			}
		}
		// id:/event: lines are redundant with the JSON payload; ignored.
	}
	return nil, sc.Err()
}

// errorEnvelope matches the service's JSON error body.
type errorEnvelope struct {
	Error string `json:"error"`
}

// renderEvent prints one event. Human mode keeps a terse one-line-per-
// event log and drops heartbeats; -json passes everything through.
func renderEvent(e watchEvent, jsonOut bool) {
	if jsonOut {
		enc, _ := json.Marshal(e)
		fmt.Println(string(enc))
		return
	}
	switch e.Type {
	case "queued":
		fmt.Printf("queued   position %d\n", e.Position)
	case "running":
		fmt.Println("running")
	case "phase":
		fmt.Printf("phase    %s\n", e.Phase)
	case "progress":
		if e.Total > 0 {
			fmt.Printf("progress %s %d/%d (%.1f%%)\n", e.Name, e.Done, e.Total,
				100*float64(e.Done)/float64(e.Total))
		} else {
			fmt.Printf("progress %s %d\n", e.Name, e.Done)
		}
	case "heartbeat":
		// Quiet: its job is keeping the connection alive.
	case "end":
		switch e.State {
		case "done":
			fmt.Println("done")
		case "failed":
			fmt.Printf("failed   %s\n", e.Error)
		case "cancelled":
			fmt.Printf("cancelled (%s)\n", e.CancelReason)
		default:
			fmt.Printf("end      state=%s\n", e.State)
		}
	default:
		fmt.Printf("%-8s seq=%d\n", e.Type, e.Seq)
	}
}

// watchExit maps the terminal event to the process exit status.
func watchExit(e *watchEvent) error {
	switch e.State {
	case "done":
		return nil
	case "failed":
		return fmt.Errorf("job failed: %s", e.Error)
	case "cancelled":
		return fmt.Errorf("job cancelled (%s)", e.CancelReason)
	}
	return fmt.Errorf("job ended in state %q", e.State)
}
