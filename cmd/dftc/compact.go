package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"dft/internal/atpg"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// cmdCompact compacts a test set against a circuit without rerunning
// generation: either cubes read from a file in 01X notation (one per
// line, width = view inputs, static merging applies) or a seeded
// random set (-random N, replay only). The kept fully-specified
// patterns are written one per line as 01 strings.
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	modeFlag := fs.String("mode", "reverse", "compaction mode: reverse, static or full")
	in := fs.String("in", "", "read 01X test cubes from this file (- = stdin)")
	random := fs.Int("random", 0, "compact a seeded random set of N patterns instead")
	seed := fs.Int64("seed", 1, "random seed (pattern generation and X-fill)")
	scan := fs.Bool("scan", false, "assume full scan (LSSD view)")
	workers := fs.Int("workers", 0, "fault-sharding workers (0 = all CPUs)")
	kernel := fs.String("kernel", "compiled", "simulation kernel: compiled or interp")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	outFile := fs.String("out", "", "write kept patterns here instead of stdout")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("compact needs one .bench file")
	}
	mode, err := compact.ParseMode(*modeFlag)
	if err != nil {
		return err
	}
	if !mode.Enabled() {
		return fmt.Errorf("compact: -mode off does nothing; pick reverse, static or full")
	}
	if (*in == "") == (*random == 0) {
		return fmt.Errorf("compact needs exactly one input: -in cubes.txt or -random N")
	}
	k, err := sim.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	sim.SetDefaultKernel(k)
	d, err := loadDesign(fs.Arg(0))
	if err != nil {
		return err
	}
	if *scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return err
		}
	}
	view := d.View()
	faults := d.Faults()
	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	opt := compact.Options{Mode: mode, Workers: *workers, Seed: *seed}

	var kept [][]bool
	var st *compact.Stats
	if *in != "" {
		cubes, err := readCubes(*in, len(view.Inputs))
		if err != nil {
			return err
		}
		kept, _, st, err = compact.Tests(ctx, d.Circuit, view, faults, cubes, opt)
		if err != nil {
			return err
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		pats := make([][]bool, *random)
		for i := range pats {
			p := make([]bool, len(view.Inputs))
			for j := range p {
				p[j] = rng.Intn(2) == 1
			}
			pats[i] = p
		}
		kept, st, err = compact.Patterns(ctx, d.Circuit, view, faults, pats, opt)
		if err != nil {
			return err
		}
	}

	if *jsonOut {
		rep := telemetry.NewReport("dftc", "compact", fs.Arg(0))
		rep.Config = map[string]any{
			"mode": mode.String(), "in": *in, "random": *random,
			"seed": *seed, "scan": *scan, "workers": *workers, "kernel": k.String(),
		}
		rep.Results = map[string]any{
			"patterns_in":    st.PatternsIn,
			"patterns_out":   st.PatternsOut,
			"compact_ratio":  st.Ratio,
			"replay_passes":  st.ReplayPasses,
			"merge_attempts": st.MergeAttempts,
			"merge_hits":     st.MergeHits,
			"coverage_in":    st.CoverageIn,
			"coverage_out":   st.CoverageOut,
			"targets":        len(faults),
		}
		if err := rep.Finish(telemetry.Default()).WriteJSON(os.Stdout); err != nil {
			return err
		}
		return writePatterns(*outFile, kept, false)
	}
	note := "coverage unchanged"
	if st.DetectedOut > st.DetectedIn {
		note = fmt.Sprintf("coverage +%d faults", st.DetectedOut-st.DetectedIn)
	}
	fmt.Fprintf(os.Stderr, "compact   : patterns %d -> %d (%.1fx, %d replay passes), %s\n",
		st.PatternsIn, st.PatternsOut, st.Ratio, st.ReplayPasses, note)
	return writePatterns(*outFile, kept, *outFile == "")
}

// readCubes parses one test cube per line in 01X notation; blank lines
// and #-comments are skipped.
func readCubes(path string, width int) ([]atpg.Test, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var cubes []atpg.Test
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if len(s) != width {
			return nil, fmt.Errorf("compact: line %d: cube width %d, view has %d inputs", line, len(s), width)
		}
		vals := make([]logic.V, width)
		for i := 0; i < width; i++ {
			switch s[i] {
			case '0':
				vals[i] = logic.Zero
			case '1':
				vals[i] = logic.One
			case 'x', 'X':
				vals[i] = logic.X
			default:
				return nil, fmt.Errorf("compact: line %d: bad cube character %q (want 0, 1 or X)", line, s[i])
			}
		}
		cubes = append(cubes, atpg.Test{Values: vals})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cubes) == 0 {
		return nil, fmt.Errorf("compact: no cubes in %s", path)
	}
	return cubes, nil
}

// writePatterns emits the kept patterns one per line as 01 strings —
// to path when given, to stdout when toStdout is set, or not at all
// (the -json case with no -out, where the report owns stdout).
func writePatterns(path string, pats [][]bool, toStdout bool) error {
	var w io.Writer
	switch {
	case path != "":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	case toStdout:
		w = os.Stdout
	default:
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, p := range pats {
		for _, b := range p {
			if b {
				bw.WriteByte('1')
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
