package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dft/internal/advise"
	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/telemetry"
)

// cmdAdvise drives the closed-loop DFT advisor: probe, score, apply
// the cheapest intervention, repeat until the coverage target is met
// or the overhead budget is spent. The plan — every applied step with
// its measured coverage, the scan-chain order, and the instrumented
// netlist — prints as a table, or as machine-readable JSON with
// -json/-out.
func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	builtin := fs.String("builtin", "", "advise a library circuit instead of a file")
	n := fs.Int("n", 0, "library circuit size (with -builtin)")
	target := fs.Float64("target", advise.DefaultTarget, "fault-coverage goal in [0,1]")
	budget := fs.Float64("budget", advise.DefaultBudget, "overhead budget as a fraction of circuit size")
	maxSteps := fs.Int("max-steps", advise.DefaultMaxSteps, "intervention cap")
	patterns := fs.Int("patterns", advise.DefaultPatterns, "random patterns per probe")
	seed := fs.Int64("seed", 1, "master seed; per-iteration probe seeds derive from it")
	workers := fs.Int("workers", 0, "fault-sharding workers (0 = all CPUs)")
	style := fs.String("style", "lssd", "scan style for chain materialization: lssd or mux")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	out := fs.String("out", "", "also write the plan JSON to this file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *target < 0 || *target > 1 {
		return fmt.Errorf("-target %v out of range [0,1]", *target)
	}

	var c *logic.Circuit
	switch {
	case *builtin != "" && fs.NArg() > 0:
		return fmt.Errorf("give -builtin or a .bench file, not both")
	case *builtin != "":
		cc, err := circuits.Builtin(*builtin, *n)
		if err != nil {
			return err
		}
		c = cc
	case fs.NArg() == 1:
		d, err := loadDesign(fs.Arg(0))
		if err != nil {
			return err
		}
		c = d.Circuit
	default:
		return fmt.Errorf("advise needs one .bench file or -builtin name")
	}

	st := lssd.StyleLSSD
	if *style == "mux" {
		st = lssd.StyleMuxScan
	} else if *style != "lssd" {
		return fmt.Errorf("unknown style %q", *style)
	}

	ctx, cancel := timeoutContext(*timeout)
	defer cancel()
	plan, err := advise.Run(ctx, c, advise.Options{
		Target:   *target,
		Budget:   *budget,
		MaxSteps: *maxSteps,
		Patterns: *patterns,
		Seed:     uint64(*seed),
		Workers:  *workers,
		Style:    st,
	})
	if err != nil {
		return fmt.Errorf("advise gave up after -timeout %v: %w", *timeout, err)
	}

	if *out != "" {
		if err := writePlanJSON(*out, plan); err != nil {
			return err
		}
	}
	if *jsonOut {
		rep := telemetry.NewReport("dftc", "advise", planInput(*builtin, fs))
		rep.Config = map[string]any{
			"target": *target, "budget": *budget, "max_steps": *maxSteps,
			"patterns": *patterns, "seed": *seed, "workers": *workers,
			"style": *style,
		}
		rep.Results = map[string]any{
			"baseline":       plan.Baseline,
			"coverage":       plan.Coverage,
			"steps":          len(plan.Steps),
			"scanned":        len(plan.Scanned),
			"overhead":       plan.Overhead,
			"overhead_gates": plan.OverheadGates,
			"pins":           plan.Pins,
			"stop_reason":    plan.StopReason,
			"plan":           plan,
		}
		return rep.Finish(telemetry.Default()).WriteJSON(os.Stdout)
	}

	fmt.Printf("advising %s: %d collapsed faults, target %.2f%%, budget %.0f%% overhead\n",
		plan.Circuit, plan.Faults, 100*plan.Target, 100*plan.Budget)
	fmt.Printf("baseline coverage %.2f%%\n", 100*plan.Baseline)
	if len(plan.Steps) > 0 {
		fmt.Printf("%-4s %-9s %-24s %9s %8s %9s %5s\n",
			"step", "kind", "net", "coverage", "delta", "overhead", "pins")
		for i, s := range plan.Steps {
			net := s.Net
			if len(s.FFs) > 1 {
				net = fmt.Sprintf("%s (+%d more)", s.FFs[0], len(s.FFs)-1)
			}
			fmt.Printf("%-4d %-9s %-24s %8.2f%% %+7.2f%% %8.1f%% %5d\n",
				i+1, s.Kind, net, 100*s.Coverage, 100*s.Delta, 100*s.Overhead, s.Pins)
		}
	}
	fmt.Printf("final coverage %.2f%% after %d steps (%s), overhead %.1f%% (%d GE, %d pins)\n",
		100*plan.Coverage, len(plan.Steps), plan.StopReason,
		100*plan.Overhead, plan.OverheadGates, plan.Pins)
	if len(plan.Scanned) > 0 {
		fmt.Printf("scan chain (%d elements): %v\n", len(plan.Scanned), plan.Scanned)
	}
	if *out != "" {
		fmt.Printf("plan written to %s\n", *out)
	}
	return nil
}

// planInput names the report input: the builtin or the file path.
func planInput(builtin string, fs *flag.FlagSet) string {
	if builtin != "" {
		return builtin
	}
	return fs.Arg(0)
}

// writePlanJSON dumps the raw plan document (not a run report) so
// downstream tools can apply it without unwrapping telemetry.
func writePlanJSON(path string, plan *advise.Plan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(plan)
}
