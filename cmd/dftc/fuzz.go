package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dft/internal/fuzzdiff"
	"dft/internal/telemetry"
)

// cmdFuzz runs the differential fuzzer from the command line: each
// seed generates a circuit, lints it, and cross-checks every kernel,
// execution width and fault-simulation backend against the baseline
// oracle. The first divergence stops the run and prints a replayable
// repro; a clean sweep exits 0.
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	rounds := fs.Int("rounds", 100, "fuzz seeds 1..N")
	seeds := fs.String("seeds", "", "comma-separated explicit seeds (overrides -rounds; use to replay a repro)")
	patterns := fs.Int("patterns", 64, "random patterns per round")
	jsonOut := fs.Bool("json", false, "emit a machine-readable run report")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fuzz takes no positional arguments")
	}
	list, err := fuzzSeedList(*seeds, *rounds)
	if err != nil {
		return err
	}
	var div *fuzzdiff.Divergence
	ran := 0
	for _, seed := range list {
		ran++
		if d := fuzzdiff.Round(fuzzdiff.ShapeConfig(seed), seed, fuzzdiff.RoundOptions{Patterns: *patterns}); d != nil {
			div = d
			break
		}
	}
	nDiv := 0
	if div != nil {
		nDiv = 1
	}
	if *jsonOut {
		rep := telemetry.NewReport("dftc", "fuzz", "")
		rep.Config = map[string]any{
			"rounds":   *rounds,
			"seeds":    *seeds,
			"patterns": *patterns,
			"configs":  len(fuzzdiff.Matrix()),
		}
		rep.Results = map[string]any{
			"rounds":      ran,
			"divergences": nDiv,
		}
		if div != nil {
			rep.Results["repro"] = div.Repro()
			rep.Results["seed"] = div.Seed
		}
		if err := rep.Finish(telemetry.Default()).WriteJSON(os.Stdout); err != nil {
			return err
		}
		if div != nil {
			return fmt.Errorf("divergence at seed %d", div.Seed)
		}
		return nil
	}
	if div != nil {
		fmt.Print(div.Repro())
		return fmt.Errorf("divergence at seed %d after %d rounds", div.Seed, ran)
	}
	fmt.Printf("fuzz: %d rounds across %d configurations, 0 divergences\n", ran, len(fuzzdiff.Matrix()))
	return nil
}

// fuzzSeedList resolves the -seeds/-rounds flags into the seed
// sequence to run.
func fuzzSeedList(seeds string, rounds int) ([]int64, error) {
	if seeds != "" {
		var list []int64
		for _, s := range strings.Split(seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed %q in -seeds", s)
			}
			list = append(list, v)
		}
		return list, nil
	}
	if rounds < 1 {
		return nil, fmt.Errorf("-rounds must be positive, got %d", rounds)
	}
	list := make([]int64, rounds)
	for i := range list {
		list[i] = int64(i + 1)
	}
	return list, nil
}
