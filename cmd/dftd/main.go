// Command dftd is the DFT-as-a-service daemon: it serves the
// toolkit's fault-simulation, ATPG and differential-fuzz engines as
// asynchronous HTTP/JSON jobs with a bounded queue, a worker pool,
// request coalescing, an LRU result cache, and graceful drain.
//
// Usage:
//
//	dftd [-addr :8345] [-workers N] [-queue N] [-job-timeout D]
//	     [-cache N] [-report file.json] [-pprof]
//
// API:
//
//	POST   /v1/jobs              {"kind":"faultsim|atpg|fuzz",
//	                             "builtin":"adder", "n":8,
//	                             "options":{...}} or {"bench":"..."}
//	GET    /v1/jobs/{id}         job state; a done job embeds its
//	                             dft.run-report/v1 document
//	GET    /v1/jobs/{id}/trace   the job's span tree (live while running)
//	GET    /v1/jobs/{id}/events  SSE stream: queue position, phase
//	                             transitions, progress, heartbeats, end
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /healthz              liveness and queue occupancy
//	GET    /metrics              Prometheus text exposition
//	/debug/pprof/...             Go profiling endpoints (only with -pprof)
//
// A full queue answers 429 with the depth in a JSON error body.
// SIGINT/SIGTERM stop admission, drain in-flight jobs (bounded by
// -drain), and flush a final telemetry run report to stderr or the
// -report file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // handlers registered on DefaultServeMux; mounted only with -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"dft/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dftd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dftd", flag.ContinueOnError)
	addr := fs.String("addr", ":8345", "listen address")
	workers := fs.Int("workers", 0, "job workers (0 = all CPUs)")
	queue := fs.Int("queue", 64, "admission queue depth; full queue answers 429")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "per-job deadline (0 = no limit)")
	cache := fs.Int("cache", 256, "result-cache entries (LRU)")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
	report := fs.String("report", "", "write the final telemetry run report to this file (default stderr)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof (opt-in: exposes goroutine and heap internals)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("dftd takes no positional arguments")
	}

	srv := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		CacheSize:  *cache,
	})
	var handler http.Handler = srv
	if *pprofOn {
		// The pprof handlers register on http.DefaultServeMux via the
		// package import; mount that mux beside the service routes so
		// the profiling surface exists only when asked for.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", srv)
		handler = mux
		fmt.Fprintln(os.Stderr, "dftd: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dftd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure etc.; nothing to drain
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dftd: signal received, draining")

	// Stop accepting connections first, then drain the job queue.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "dftd: http shutdown:", err)
	}
	rep, err := srv.Shutdown(shutCtx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dftd: drain incomplete:", err)
	}

	out := os.Stderr
	if *report != "" {
		f, ferr := os.Create(*report)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}
	return rep.WriteJSON(out)
}
