module dft

go 1.22
