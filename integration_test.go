package dft

// Integration tests: the complete flows a downstream adopter runs,
// crossing every package boundary — netlist I/O, testability analysis,
// scan insertion, ATPG, gate-level scan application, self-test, and
// diagnosis — on one design each.

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"dft/internal/atpg"
	"dft/internal/bilbo"
	"dft/internal/circuits"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/diagnose"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/scanset"
	"dft/internal/testability"
)

// TestIntegrationFullScanFlow drives a sequential design from .bench
// text to a verified, hardware-applied scan test set:
//
//	parse → SCOAP → scan-select → LSSD insert → chain flush →
//	combinational ATPG → compaction → scan application on good and
//	fault-injected machines → coverage and economics report.
func TestIntegrationFullScanFlow(t *testing.T) {
	// 1. Serialize a library design through the interchange format and
	//    load it back (the adopter's entry point).
	src := logic.BenchString(circuits.GrayCounter(6))
	d, err := core.LoadString("gray6", src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	c := d.Circuit

	// 2. Testability analysis finds sequential depth worth scanning.
	m := testability.Analyze(c)
	if m.Summarize().MaxSD == 0 {
		t.Fatal("a counter must show sequential depth")
	}
	// Partial-scan selection at full budget must cover all FFs.
	if got := scanset.SelectPartialScan(c, c.NumDFFs()); len(got) != c.NumDFFs() {
		t.Fatalf("selection returned %d of %d", len(got), c.NumDFFs())
	}

	// 3. Scan insertion + chain integrity before trusting any test.
	design := lssd.NewDesign(c, lssd.StyleLSSD)
	if !design.FlushTest().Pass {
		t.Fatal("flush test failed on healthy hardware")
	}

	// 4. Combinational ATPG under the full-scan view, compacted.
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	view := atpg.FullScanView(c)
	gen := atpg.Generate(c, view, cl.Reps, atpg.Config{
		Engine: atpg.EnginePodem, RandomFirst: 64, RandomSeed: 9,
	})
	if gen.RawCover < 1.0 {
		t.Fatalf("scan ATPG coverage %.3f", gen.RawCover)
	}
	patterns, cst, err := compact.Patterns(context.Background(), c, view, cl.Reps, gen.Patterns,
		compact.Options{Mode: compact.ModeReverse})
	if err != nil {
		t.Fatal(err)
	}
	if cst.PatternsOut > cst.PatternsIn {
		t.Fatalf("compaction grew the set: %+v", cst)
	}
	if got := mustFaultSim(t, c, cl.Reps, patterns, fault.Options{Backend: fault.BackendParallel, View: fault.View{Inputs: view.Inputs, Outputs: view.Outputs}}); got.Coverage() < 1.0 {
		t.Fatalf("compacted coverage %.3f", got.Coverage())
	}

	// 5. Apply every test through the actual scan chain against good
	//    and fault-injected machines; every combinational fault checked
	//    must be caught by at least one test.
	type resp struct{ po, cap string }
	encode := func(r lssd.TestResponse) resp {
		var b strings.Builder
		for _, v := range r.PO {
			if v {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		po := b.String()
		b.Reset()
		for _, v := range r.Captured {
			if v {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return resp{po, b.String()}
	}
	tests := make([]lssd.ScanTest, len(patterns))
	golden := make([]resp, len(patterns))
	for i, p := range patterns {
		tests[i] = lssd.ScanTest{PI: p[:len(c.PIs)], State: p[len(c.PIs):]}
		design.Reset()
		golden[i] = encode(design.RunTest(tests[i]))
	}
	checked := 0
	for _, f := range cl.Reps {
		if !c.Gates[f.Gate].Type.IsCombinational() {
			continue
		}
		if checked >= 12 {
			break
		}
		checked++
		faulty := lssd.NewDesign(c, lssd.StyleLSSD)
		faulty.InjectFault(f)
		caught := false
		for i := range tests {
			faulty.Reset()
			faulty.InjectFault(f)
			if encode(faulty.RunTest(tests[i])) != golden[i] {
				caught = true
				break
			}
		}
		if !caught {
			t.Fatalf("fault %s escaped the applied scan test set", f.Name(c))
		}
	}
	if checked == 0 {
		t.Fatal("no combinational faults checked")
	}

	// 6. The facade's economics report agrees with the pieces.
	if err := d.ApplyScan(core.StyleLSSD); err != nil {
		t.Fatal(err)
	}
	ts := d.Generate(core.GenerateOptions{Engine: atpg.EnginePodem, RandomFirst: 64, Seed: 9})
	rep := d.BuildReport(ts)
	if rep.Coverage < 1.0 || rep.OverheadPct <= 0 || rep.TesterCycles <= 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
}

// TestIntegrationBISTAndDiagnosis couples the self-test and fault-
// location flows: a BILBO session flags a defective combinational
// block, then a dictionary narrows the defect at the pins.
func TestIntegrationBISTAndDiagnosis(t *testing.T) {
	c1 := circuits.RippleAdder(3)
	c2 := circuits.ParityTree(8)
	st := bilbo.NewSelfTest(c1, c2, 8, 8, 255)
	g1, g2 := st.GoodSignatures()

	// Pick a random defect in the adder.
	u := fault.Universe(c1)
	rng := rand.New(rand.NewSource(11))
	truth := u[rng.Intn(len(u))]
	b1, b2 := st.SessionSignatures(1, &truth)
	if b1 == g1 && b2 == g2 {
		t.Skipf("fault %s aliased in the MISR (2^-8 chance)", truth.Name(c1))
	}

	// The board comes back for diagnosis: build a dictionary from a
	// deterministic test set and locate the defect.
	cl := fault.CollapseEquiv(c1, fault.Universe(c1))
	gen := atpg.Generate(c1, atpg.PrimaryView(c1), cl.Reps,
		atpg.Config{Engine: atpg.EnginePodem, RandomFirst: 64, RandomSeed: 3})
	dict, err := diagnose.Build(context.Background(), c1, u, gen.Patterns, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cands := dict.Diagnose(truth)
	found := false
	for _, f := range cands {
		if f == truth {
			found = true
		}
	}
	if !found {
		t.Fatalf("true fault %s not among %d candidates", truth.Name(c1), len(cands))
	}
	if len(cands) > 8 {
		t.Fatalf("diagnosis too coarse: %d candidates", len(cands))
	}
}

// TestIntegrationBenchRoundTripAllGenerators pushes every library
// generator through the interchange format and re-finalizes.
func TestIntegrationBenchRoundTripAllGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []*logic.Circuit{
		circuits.C17(),
		circuits.RippleAdder(6),
		circuits.ArrayMultiplier(4),
		circuits.ParityTree(9),
		circuits.Decoder(3),
		circuits.Mux(3),
		circuits.Comparator(4),
		circuits.Majority(5),
		circuits.ALU74181(),
		circuits.Cascade74181(2),
		circuits.Counter(6),
		circuits.ShiftRegister(5),
		circuits.JohnsonCounter(4),
		circuits.GrayCounter(5),
		circuits.FSM(),
		circuits.SequencedALU(4),
		circuits.RandomCircuit(rng, 10, 80, 5, 4),
		circuits.RandomPLA(rng, 12, 5, 3, 10),
	}
	for _, c := range cases {
		back, err := logic.ParseBenchString(c.Name, logic.BenchString(c))
		if err != nil {
			t.Fatalf("%s: reparse: %v", c.Name, err)
		}
		if back.NumGates() != c.NumGates() || back.NumDFFs() != c.NumDFFs() ||
			len(back.PIs) != len(c.PIs) || len(back.POs) != len(c.POs) {
			t.Fatalf("%s: structure changed across the interchange format", c.Name)
		}
	}
}
