// Package dft is a from-scratch Go reproduction of Williams & Parker,
// "Design for Testability — A Survey" (DAC 1982 / Proc. IEEE 1983): a
// complete design-for-testability toolkit covering the stuck-at fault
// model, fault simulation, the D-algorithm and PODEM, SCOAP testability
// measures, LSSD / Scan Path / Scan-Set / Random-Access Scan, Signature
// Analysis, BILBO self-test, Syndrome and Walsh-coefficient testing,
// and autonomous testing with multiplexer and sensitized partitioning.
//
// The implementation lives under internal/; this package re-exports
// the unified public surface — circuit loading, the Design flow, and
// the sharded fault-simulation engine behind Simulate — as a façade
// (see dft.go). See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The
// repository-root tests and benchmarks regenerate every table and
// figure of the paper.
package dft
