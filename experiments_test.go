package dft

// The repository-root experiment tests regenerate every table and
// figure of the paper and assert its quantitative claims: who wins, by
// roughly what factor, and where the crossovers fall. Each test
// corresponds to a row of the per-experiment index in DESIGN.md and a
// section of EXPERIMENTS.md.

import (
	"math"
	"strings"
	"testing"

	"dft/internal/experiments"
)

func render(t *testing.T, id string) string {
	t.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	out := e.Run().Render()
	t.Log("\n" + out)
	return out
}

func TestExpFig1(t *testing.T) {
	r := experiments.Fig1().(experiments.Fig1Result)
	if !r.IsTest {
		t.Fatal("Fig. 1 pattern 01 must be a test for A s-a-1")
	}
	if r.GoodOut || !r.FaultyOut {
		t.Fatalf("good=%v faulty=%v, want 0/1", r.GoodOut, r.FaultyOut)
	}
	render(t, "fig01")
}

func TestExpFaultUniverse(t *testing.T) {
	r := experiments.FaultUniverse().(experiments.UniverseResult)
	if r.SingleFaults != 6000 {
		t.Fatalf("6·G = %d, want 6000", r.SingleFaults)
	}
	if r.MultipleFaults < 5.1e47 || r.MultipleFaults > 5.2e47 {
		t.Fatalf("3^100 = %.3g", r.MultipleFaults)
	}
	// "About 3000": the collapse ratio lands near one half.
	if r.CollapseRatio < 0.35 || r.CollapseRatio > 0.70 {
		t.Fatalf("collapse ratio %.2f outside the paper's 'about half' band", r.CollapseRatio)
	}
	if r.SimulationPasses != 3001 {
		t.Fatalf("simulation passes %d, want 3001", r.SimulationPasses)
	}
}

func TestExpEq1Scaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	r := experiments.Eq1Scaling(nil).(experiments.Eq1Result)
	t.Log("\n" + r.Render())
	// The classical serial flow reproduces the paper's T = K·N³
	// (footnote 1 debates 2 vs 3; timing noise argues for a band).
	if r.ClassicalExponent < 2.2 || r.ClassicalExponent > 4.0 {
		t.Fatalf("classical exponent %.2f outside the paper's band", r.ClassicalExponent)
	}
	// The modern flow must beat the classical law decisively.
	if r.ModernExponent >= r.ClassicalExponent {
		t.Fatalf("modern exponent %.2f should beat classical %.2f",
			r.ModernExponent, r.ClassicalExponent)
	}
	last := r.Points[len(r.Points)-1]
	if last.ModernSecs >= last.ClassicalSecs {
		t.Fatalf("modern flow slower than classical at %d gates", last.Gates)
	}
}

func TestExpExhaustive(t *testing.T) {
	r := experiments.Exhaustive().(experiments.ExhaustiveResult)
	if r.Patterns < 3.7e22 || r.Patterns > 3.9e22 {
		t.Fatalf("2^75 = %.3g, want ≈3.8e22", r.Patterns)
	}
	if r.Years < 1e9 {
		t.Fatalf("%.3g years, want over a billion", r.Years)
	}
	render(t, "exhaustive")
}

func TestExpRuleOfTen(t *testing.T) {
	r := experiments.RuleOfTen().(experiments.RuleOfTenResult)
	want := []float64{0.30, 3, 30, 300}
	for i := range want {
		if math.Abs(r.Costs[i]-want[i]) > 1e-9 {
			t.Fatalf("level %d: %.2f", i, r.Costs[i])
		}
	}
	render(t, "ruleoften")
}

func TestExpFig2Degating(t *testing.T) {
	r := experiments.Fig2Degating().(experiments.DegatingResult)
	if r.CC1After >= r.CC1Before {
		t.Fatalf("degating did not improve CC1: %d -> %d", r.CC1Before, r.CC1After)
	}
	if r.OscFreeRepeat {
		t.Fatal("free-running oscillator sessions should not repeat")
	}
	if !r.OscDegateRepeat {
		t.Fatal("degated sessions must repeat")
	}
	render(t, "fig02-03")
}

func TestExpFig4TestPoints(t *testing.T) {
	r := experiments.Fig4TestPoints().(experiments.TestPointResult)
	if r.COAfter > 1 || r.COBefore <= 1 {
		t.Fatalf("observation point: CO %d -> %d", r.COBefore, r.COAfter)
	}
	if r.Recs == 0 {
		t.Fatal("no test points recommended")
	}
}

func TestExpFig5BedOfNails(t *testing.T) {
	r := experiments.Fig5BedOfNails().(experiments.BedOfNailsResult)
	if r.EdgePass {
		t.Fatal("edge test should fail on the defective board")
	}
	if len(r.InCircuit) != 1 || r.InCircuit[0] != "ADD" {
		t.Fatalf("in-circuit isolation found %v, want [ADD]", r.InCircuit)
	}
	render(t, "fig05")
}

func TestExpFig6Bus(t *testing.T) {
	r := experiments.Fig6Bus().(experiments.BusResult)
	if len(r.HealthyFailures) != 0 {
		t.Fatalf("healthy bus failures %v", r.HealthyFailures)
	}
	if len(r.ModuleFailure) != 1 || r.ModuleFailure[0] != "RAM" {
		t.Fatalf("module isolation %v", r.ModuleFailure)
	}
	if !strings.Contains(r.StuckDiagnosis, "bus trace") {
		t.Fatalf("stuck diagnosis %q", r.StuckDiagnosis)
	}
	render(t, "fig06")
}

func TestExpFig7LFSR(t *testing.T) {
	r := experiments.Fig7LFSR().(experiments.Fig7Result)
	if r.Period != 7 {
		t.Fatalf("period %d, want 7", r.Period)
	}
	// The figure's canonical walk from 100.
	want := []uint64{0b010, 0b101, 0b011, 0b111, 0b110, 0b100, 0b001}
	for i, w := range want {
		if r.Sequences[0][i] != w {
			t.Fatalf("step %d: %03b, want %03b", i, r.Sequences[0][i], w)
		}
	}
	render(t, "fig07")
}

func TestExpFig8Signature(t *testing.T) {
	r := experiments.Fig8Signature().(experiments.Fig8Result)
	for i, w := range r.Widths {
		miss := 1 - r.CatchRates[i]
		if miss > 2.5*r.Theory[i]+0.01 {
			t.Fatalf("width %d: miss rate %.5f far above theory %.5f", w, miss, r.Theory[i])
		}
	}
	// 16-bit must be essentially perfect (paper: "extremely high").
	if r.CatchRates[len(r.CatchRates)-1] < 0.999 {
		t.Fatalf("16-bit catch rate %.5f", r.CatchRates[len(r.CatchRates)-1])
	}
	if r.Culprit != "ALU" {
		t.Fatalf("diagnosis culprit %q, want ALU", r.Culprit)
	}
	if !r.LoopRefusal {
		t.Fatal("looped board must be refused")
	}
	render(t, "fig08")
}

func TestExpFig12LSSD(t *testing.T) {
	r := experiments.Fig9to12LSSD().(experiments.LSSDResult)
	t.Log("\n" + r.Render())
	if r.ScanCoverage < 1.0 {
		t.Fatalf("scan coverage %.3f, want 1.0", r.ScanCoverage)
	}
	if r.SeqCoverage >= r.ScanCoverage {
		t.Fatalf("sequential %.3f should trail scan %.3f", r.SeqCoverage, r.ScanCoverage)
	}
	// Overheads: LSSD above mux-scan; both positive. The paper's 4-20%
	// band assumed large surrounding logic; our register-heavy bench
	// sits above it, and the ordering is the claim under test.
	if r.OverheadLSSD <= r.OverheadMux || r.OverheadMux <= 0 {
		t.Fatalf("overheads: lssd %.3f, mux %.3f", r.OverheadLSSD, r.OverheadMux)
	}
	if r.EndToEndChecks == 0 {
		t.Fatal("no faults verified through scan hardware")
	}
	if r.TesterCycles <= 0 {
		t.Fatal("serialization cost missing")
	}
}

func TestExpFig13Scanpath(t *testing.T) {
	r := experiments.Fig13Scanpath().(experiments.ScanPathResult)
	if !r.RaceSafe || r.RaceUnsafe {
		t.Fatalf("race analysis wrong: safe=%v unsafe=%v", r.RaceSafe, r.RaceUnsafe)
	}
	if !r.SelectedShifts || !r.BlockedOutput {
		t.Fatal("card selection behavior wrong")
	}
	if r.LargestAfter >= r.LargestBefore || r.BlockingFFsUsed == 0 {
		t.Fatalf("partition capping: %d -> %d with %d FFs",
			r.LargestBefore, r.LargestAfter, r.BlockingFFsUsed)
	}
	render(t, "fig13-14")
}

func TestExpFig15ScanSet(t *testing.T) {
	r := experiments.Fig15ScanSet().(experiments.ScanSetResult)
	if r.SnapshotValue != 5 {
		t.Fatalf("snapshot %d, want 5", r.SnapshotValue)
	}
	if r.MachineDisturbed {
		t.Fatal("snapshot disturbed the running machine")
	}
	if !(r.CovPrimary < r.CovPartial && r.CovPartial < r.CovFull && r.CovFull == 1.0) {
		t.Fatalf("coverage band violated: %.3f / %.3f / %.3f",
			r.CovPrimary, r.CovPartial, r.CovFull)
	}
}

func TestExpFig18RAS(t *testing.T) {
	r := experiments.Fig16to18RAS().(experiments.RASResult)
	if r.GatesPerLatch < 3 || r.GatesPerLatch > 4 {
		t.Fatalf("gates/latch %.1f outside 3-4", r.GatesPerLatch)
	}
	if r.Pins < 10 || r.Pins > 20 || r.PinsSerialized != 6 {
		t.Fatalf("pins %d / serialized %d", r.Pins, r.PinsSerialized)
	}
	if r.SingleOpCost != 1 || r.SerialCost != 64 {
		t.Fatalf("access cost %d vs %d", r.SingleOpCost, r.SerialCost)
	}
	render(t, "fig16-18")
}

func TestExpFig19Modes(t *testing.T) {
	r := experiments.Fig19to21BILBO().(experiments.BILBOResult)
	t.Log("\n" + r.Render())
	if !r.FaultCaught {
		t.Fatal("BILBO self-test missed the injected fault")
	}
	// Coverage grows with pattern count up to MISR aliasing noise
	// (±2^-8 per fault), and is high at the top of the curve.
	first := r.CoverageCurve[0].Coverage
	top := r.CoverageCurve[len(r.CoverageCurve)-1].Coverage
	if top < 0.95 {
		t.Fatalf("long-session coverage %.3f", top)
	}
	if first > top+0.05 {
		t.Fatalf("coverage curve inverted: %.3f at %d patterns vs %.3f at %d",
			first, r.CoverageCurve[0].Patterns, top, r.CoverageCurve[len(r.CoverageCurve)-1].Patterns)
	}
	if r.DataVolumeScan/r.DataVolumeBILBO != 100 {
		t.Fatalf("data volume factor %d, want 100", r.DataVolumeScan/r.DataVolumeBILBO)
	}
}

func TestExpFig22PLA(t *testing.T) {
	r := experiments.Fig22PLA().(experiments.PLAResult)
	t.Log("\n" + r.Render())
	for _, p := range r.Series {
		if p.PLACov >= p.RandomCov {
			t.Fatalf("at %d patterns PLA %.3f should trail random logic %.3f",
				p.Patterns, p.PLACov, p.RandomCov)
		}
	}
	// "Random combinational logic networks with maximum fan-in of 4 can
	// do quite well with random patterns" — coverage saturates high
	// (the residue is dominated by genuinely redundant faults in the
	// random network), while the PLA stays an order of magnitude below.
	last := r.Series[len(r.Series)-1]
	if last.RandomCov < 0.8 {
		t.Fatalf("fan-in-4 logic coverage %.3f, want >= 0.8", last.RandomCov)
	}
	if last.PLACov > 0.85 {
		t.Fatalf("PLA coverage %.3f unexpectedly high at %d patterns", last.PLACov, last.Patterns)
	}
}

func TestExpFig23Syndrome(t *testing.T) {
	r := experiments.Fig23Syndrome().(experiments.SyndromeResult)
	if r.MuxUntestable == 0 {
		t.Fatal("mux must exhibit syndrome-untestable faults")
	}
	if r.AfterRemaining != 0 || r.ExtraInputs == 0 || r.ExtraInputs > 2 {
		t.Fatalf("MakeTestable: %d extra inputs, %d remaining (paper: at most 1-2 inputs)",
			r.ExtraInputs, r.AfterRemaining)
	}
	render(t, "fig23")
}

func TestExpTableIWalsh(t *testing.T) {
	r := experiments.TableIWalsh().(experiments.WalshResult)
	t.Log("\n" + r.Render())
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.CAll != -4 || r.C0 != 0 {
		t.Fatalf("C_all=%d C_0=%d, want -4/0", r.CAll, r.C0)
	}
	if r.InputDetected != r.InputChecked || r.InputChecked != 6 {
		t.Fatalf("input theorem: %d/%d", r.InputDetected, r.InputChecked)
	}
	if r.Coverage < 0.9 {
		t.Fatalf("two-coefficient coverage %.3f", r.Coverage)
	}
}

func TestExpFig26Module(t *testing.T) {
	r := experiments.Fig26Module().(experiments.ModuleResult)
	if r.GenStates != 7 || !r.SigChanged {
		t.Fatalf("module result %+v", r)
	}
	render(t, "fig26-29")
}

func TestExpFig30Mux(t *testing.T) {
	r := experiments.Fig30Mux().(experiments.MuxPartResult)
	if r.After >= r.Before {
		t.Fatalf("mux partitioning: %d -> %d", r.Before, r.After)
	}
	if float64(r.Before)/float64(r.After) < 4 {
		t.Fatalf("reduction factor %.1f too small", float64(r.Before)/float64(r.After))
	}
	if r.Coverage < 0.95 {
		t.Fatalf("executed partitioned test coverage %.3f", r.Coverage)
	}
	if r.Applied*32 > r.Before {
		t.Fatalf("executed test used %d patterns, not ≪ %d", r.Applied, r.Before)
	}
	render(t, "fig30-32")
}

func TestExpFig33Sensitized(t *testing.T) {
	r := experiments.Fig33Sensitized().(experiments.SensitizedResult)
	t.Log("\n" + r.Render())
	if r.Report.N1Coverage() < 1.0 {
		t.Fatalf("N1 coverage %.3f", r.Report.N1Coverage())
	}
	if r.Report.TotalCoverage() < 0.9 {
		t.Fatalf("total coverage %.3f", r.Report.TotalCoverage())
	}
	if r.Report.Patterns*100 > r.Report.ExhaustiveSize {
		t.Fatalf("pattern count %d not ≪ exhaustive %d", r.Report.Patterns, r.Report.ExhaustiveSize)
	}
}

func TestExpSCOAP(t *testing.T) {
	r := experiments.SCOAPMeasures().(experiments.SCOAPResult)
	if len(r.Rows) < 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	var c17, mult8 int
	for _, row := range r.Rows {
		switch row.Circuit {
		case "c17":
			c17 = row.Summary.MaxCO
		case "mult8":
			mult8 = row.Summary.MaxCO
		}
	}
	if mult8 <= c17 {
		t.Fatalf("mult8 CO %d should exceed c17 CO %d", mult8, c17)
	}
	render(t, "scoap")
}
