// Selftest builds the paper's Fig. 20/21 BILBO architecture around two
// combinational networks, runs the two-phase self-test, shows the
// signatures catching an injected fault, and demonstrates Fig. 22's
// caveat: the same machinery that tests an adder almost for free gets
// nowhere on a wide-fan-in PLA.
package main

import (
	"fmt"
	"math/rand"

	"dft/internal/bilbo"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

func main() {
	adder := circuits.RippleAdder(3)
	parity := circuits.ParityTree(8)
	st := bilbo.NewSelfTest(adder, parity, 8, 8, 255)

	g1, g2 := st.GoodSignatures()
	fmt.Printf("golden signatures: phase1=%#04x phase2=%#04x\n", g1, g2)

	// Inject a fault into the adder and watch the signature move.
	s1, _ := adder.NetByName("S1")
	f := fault.Fault{Gate: s1, Pin: fault.Stem, SA: logic.One}
	b1, b2 := st.SessionSignatures(1, &f)
	fmt.Printf("faulty  signatures: phase1=%#04x phase2=%#04x  (fault %s)\n",
		b1, b2, f.Name(adder))
	fmt.Printf("self-test verdict : detected=%v\n\n", b1 != g1 || b2 != g2)

	// Coverage as a function of session length.
	cl := fault.CollapseEquiv(adder, fault.Universe(adder))
	fmt.Println("random-pattern coverage of the adder (paper: \"combinational")
	fmt.Println("logic is highly susceptible to random patterns\"):")
	for _, n := range []int{8, 32, 128, 255} {
		cs := bilbo.NewSelfTest(adder, parity, 8, 8, n).MeasureCoverage(cl.Reps)
		fmt.Printf("  %4d patterns -> %.1f%%\n", n, cs.Coverage()*100)
	}

	// Fig. 22: the PLA counterexample.
	rng := rand.New(rand.NewSource(7))
	pla := circuits.RandomPLA(rng, 16, 6, 4, 16)
	plaCl := fault.CollapseEquiv(pla, fault.Universe(pla))
	plaSt := bilbo.NewSelfTest(pla, parity, 16, 8, 255)
	cs := plaSt.MeasureCoverage(plaCl.Reps)
	fmt.Printf("\nsame budget on a 16-literal-product PLA -> %.1f%% (Fig. 22's point)\n",
		cs.Coverage()*100)

	// The data-volume argument.
	scanBits, bilboBits := bilbo.DataVolume(100, 255)
	fmt.Printf("\ntest data volume for a 100-bit chain, 255 patterns:\n")
	fmt.Printf("  scan: %d bits  BILBO: %d bits  (factor %d)\n",
		scanBits, bilboBits, scanBits/bilboBits)
}
