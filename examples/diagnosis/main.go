// Diagnosis walks the fault-location side of the paper: build a
// fault dictionary for a test set, observe a failing device at the
// pins, narrow it to a candidate class, then use a distinguishing
// pattern and — when the pins run out of resolution — an internal
// probe, the reason bed-of-nails and signature analyzers exist.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/compact"
	"dft/internal/diagnose"
	"dft/internal/fault"
)

func main() {
	c := circuits.RippleAdder(4)
	u := fault.Universe(c)

	// A compacted deterministic test set.
	cl := fault.CollapseEquiv(c, u)
	gen := atpg.Generate(c, atpg.PrimaryView(c), cl.Reps,
		atpg.Config{Engine: atpg.EnginePodem, RandomFirst: 64, RandomSeed: 2})
	patterns, _, err := compact.Patterns(context.Background(), c, atpg.PrimaryView(c), cl.Reps,
		gen.Patterns, compact.Options{Mode: compact.ModeReverse})
	if err != nil {
		panic(err)
	}
	fmt.Printf("test set: %d patterns, %.0f%% stuck-at coverage\n",
		len(patterns), gen.RawCover*100)

	dict, err := diagnose.Build(context.Background(), c, u, patterns, diagnose.Options{})
	if err != nil {
		panic(err)
	}
	r := dict.Resolution()
	fmt.Printf("dictionary: %d classes over %d faults (mean %.2f, max %d), %d bytes\n\n",
		r.Classes, len(u), r.MeanSize, r.MaxSize, dict.CompactBytes())

	// A "returned board" with an unknown defect.
	rng := rand.New(rand.NewSource(7))
	truth := u[rng.Intn(len(u))]
	fmt.Printf("injected (hidden from the tester): %s\n", truth.Name(c))

	candidates := dict.Diagnose(truth)
	fmt.Printf("pin-level diagnosis: %d candidate(s):\n", len(candidates))
	for _, f := range candidates {
		fmt.Printf("  %s\n", f.Name(c))
	}

	// If more than one candidate remains, the pins cannot separate
	// them under this test set: check whether ANY pattern could.
	if len(candidates) > 1 {
		idx := func(f fault.Fault) int {
			for i, g := range u {
				if g == f {
					return i
				}
			}
			return -1
		}
		p := dict.DistinguishingPattern(idx(candidates[0]), idx(candidates[1]))
		if p < 0 {
			fmt.Println("no pattern in the set distinguishes them — equivalence at the pins;")
			fmt.Println("resolution beyond this point needs internal probing (bed-of-nails,")
			fmt.Println("signature analysis), exactly the paper's §III toolbox.")
		} else {
			fmt.Printf("pattern %d distinguishes the leading candidates\n", p)
		}
	} else {
		fmt.Println("unique diagnosis at the pins.")
	}
}
