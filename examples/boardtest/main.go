// Boardtest exercises the board-level, ad hoc half of the paper on a
// self-stimulating "microprocessor board": signature analysis with a
// 16-bit analyzer (Fig. 8), kernel-first fault isolation, the closed-
// loop rule, and the bus-isolation ambiguity of Fig. 6.
package main

import (
	"fmt"
	"log"

	"dft/internal/board"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/signature"
)

// buildBoard assembles a counter kernel ("the microprocessor"), an
// increment ALU, and a parity checker as one netlist with a module map.
func buildBoard() *signature.Board {
	c := logic.New("demo-board")
	en := c.AddInput("EN")
	qs := make([]int, 4)
	for i := range qs {
		qs[i] = c.AddDFF(fmt.Sprintf("Q%d", i), en)
	}
	carry := en
	for i := 0; i < 4; i++ {
		t := c.AddGate(logic.Xor, fmt.Sprintf("T%d", i), qs[i], carry)
		c.Gates[qs[i]].Fanin[0] = t
		if i < 3 {
			carry = c.AddGate(logic.And, fmt.Sprintf("CA%d", i), carry, qs[i])
		}
	}
	s0 := c.AddGate(logic.Not, "S0", qs[0])
	c1 := c.AddGate(logic.And, "C1x", qs[0], qs[0])
	s1 := c.AddGate(logic.Xor, "S1", qs[1], c1)
	c2 := c.AddGate(logic.And, "C2x", qs[1], c1)
	s2 := c.AddGate(logic.Xor, "S2", qs[2], c2)
	c3 := c.AddGate(logic.And, "C3x", qs[2], c2)
	s3 := c.AddGate(logic.Xor, "S3", qs[3], c3)
	par := c.AddGate(logic.Xor, "PAR", s0, s1, s2, s3)
	c.MarkOutput(par)
	c.MustFinalize()
	return &signature.Board{
		C:        c,
		Stimulus: signature.SelfStimulus(c, 50),
		Modules: []signature.Module{
			{Name: "uP", Outputs: qs},
			{Name: "ALU", Outputs: []int{s0, s1, s2, s3}, Feeds: []string{"uP"}},
			{Name: "CHK", Outputs: []int{par}, Feeds: []string{"ALU"}},
		},
	}
}

func main() {
	b := buildBoard()
	analyzer := signature.NewAnalyzer(16)

	// Golden signatures for a few interesting nets.
	q3, _ := b.C.NetByName("Q3")
	s1, _ := b.C.NetByName("S1")
	par, _ := b.C.NetByName("PAR")
	golden := b.GoldenSignatures(analyzer, []int{q3, s1, par})
	fmt.Println("golden signatures (16-bit, 50-cycle session):")
	for _, n := range []int{q3, s1, par} {
		fmt.Printf("  %-4s %#06x\n", b.C.NameOf(n), golden[n])
	}

	// Inject a fault in the ALU module and isolate it kernel-first.
	f := fault.Fault{Gate: s1, Pin: fault.Stem, SA: logic.One}
	diag, err := b.Diagnose(analyzer, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected %s\n", f.Name(b.C))
	fmt.Printf("kernel-first probing found module %q in %d probes (bad nets: %d)\n",
		diag.Culprit, diag.Probes, len(diag.BadNets))

	// The closed-loop rule: close the loop, watch the refusal, break it.
	for i := range b.Modules {
		if b.Modules[i].Name == "uP" {
			b.Modules[i].Feeds = append(b.Modules[i].Feeds, "CHK")
		}
	}
	if _, err := b.Diagnose(analyzer, f); err != nil {
		fmt.Printf("\nclosed loop detected: %v\n", err)
	}
	if err := b.BreakLoop("uP", "CHK"); err != nil {
		log.Fatal(err)
	}
	if diag, err = b.Diagnose(analyzer, f); err == nil {
		fmt.Printf("after jumper break: culprit %q again\n", diag.Culprit)
	}

	// Fig. 6: bus isolation and its stuck-trace ambiguity.
	mk := func(v bool) func() bool { return func() bool { return v } }
	bus := &board.Bus{Drivers: []*board.BusDriver{
		{Name: "CPU", Drive: mk(true)}, {Name: "ROM", Drive: mk(true)},
		{Name: "RAM", Drive: mk(true)}, {Name: "IO", Drive: mk(true)},
	}}
	expected := map[string]bool{"CPU": true, "ROM": true, "RAM": true, "IO": true}
	failing, _ := bus.IsolateAndTest(expected)
	fmt.Printf("\nhealthy bus isolation: %d failures\n", len(failing))
	stuck := false
	bus.Stuck = &stuck
	failing, _ = bus.IsolateAndTest(expected)
	fmt.Printf("stuck-at-0 trace     : %s\n", board.DiagnoseBus(failing, len(bus.Drivers)))
}
