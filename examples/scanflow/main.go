// Scanflow walks the paper's central argument on the canonical hard
// sequential design: a deep binary counter, whose high bits are
// hundreds of clock cycles away from the pins. It shows (1) how poorly
// random sequences do without DFT, (2) LSSD scan insertion with its
// overhead bill, (3) combinational ATPG under the full-scan view
// reaching every fault in one frame, and (4) the generated tests
// applied end to end through the actual scan hardware — scan-in,
// capture, scan-out — distinguishing good from faulty machines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/lssd"
)

func main() {
	// A 12-bit counter: bit 11 toggles once per 2^11 cycles, so a
	// 100-cycle pin-level test can never see it move.
	c := circuits.Counter(12)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	fmt.Printf("design %s: %d gates, %d flip-flops, %d fault classes\n\n",
		c.Name, c.NumGates(), c.NumDFFs(), len(cl.Reps))

	// --- Before DFT: the tester sees only the pins. ---
	rng := rand.New(rand.NewSource(1))
	seq := make([][]bool, 100)
	for i := range seq {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		seq[i] = p
	}
	seqRes := fault.SimulateSequence(c, cl.Reps, seq)
	fmt.Printf("no scan, 100 random cycles    : %.1f%% coverage\n", seqRes.Coverage()*100)

	// --- Insert LSSD scan. ---
	design := lssd.NewDesign(c, lssd.StyleLSSD)
	fmt.Printf("LSSD insertion                : chain length %d, overhead %.1f%%, +%d pins\n",
		design.ChainLength(), 100*lssd.Overhead(c, design.Scanned), lssd.PinOverhead())

	// --- ATPG is now combinational. ---
	view := atpg.FullScanView(c)
	gen := atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem, RandomFirst: 128})
	fmt.Printf("full-scan combinational ATPG  : %.1f%% coverage, %d patterns\n",
		gen.RawCover*100, len(gen.Patterns))
	fmt.Printf("serialization bill            : %d tester cycles\n\n", design.TestCycles(len(gen.Patterns)))

	// --- Apply a few tests through the real scan hardware. ---
	fmt.Println("end-to-end through the scan chain:")
	shown := 0
	for _, f := range cl.Reps {
		if shown == 5 {
			break
		}
		if !c.Gates[f.Gate].Type.IsCombinational() {
			continue
		}
		cube, err := atpg.Podem(c, view, f, atpg.PodemConfig{})
		if err != nil {
			log.Fatalf("podem on %s: %v", f.Name(c), err)
		}
		full := cube.Bools()
		st := lssd.ScanTest{PI: full[:len(c.PIs)], State: full[len(c.PIs):]}

		design.Reset()
		good := design.RunTest(st)
		faulty := lssd.NewDesign(c, lssd.StyleLSSD)
		faulty.InjectFault(f)
		bad := faulty.RunTest(st)

		detected := false
		for i := range good.Captured {
			if good.Captured[i] != bad.Captured[i] {
				detected = true
			}
		}
		for i := range good.PO {
			if good.PO[i] != bad.PO[i] {
				detected = true
			}
		}
		fmt.Printf("  %-28s scan test %v -> detected=%v\n", f.Name(c), cube, detected)
		shown++
	}
}
