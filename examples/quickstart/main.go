// Quickstart: load a small circuit, analyze its testability, generate
// a complete stuck-at test set with PODEM, and print the quality
// economics — the whole toolkit in thirty lines.
package main

import (
	"fmt"
	"log"

	"dft/internal/atpg"
	"dft/internal/core"
)

const c17 = `
# ISCAS-85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func main() {
	design, err := core.LoadString("c17", c17)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Where are the hard nets? (§II: controllability/observability.)
	summary, hardest := design.Analyze(3)
	fmt.Println("SCOAP:", summary)
	for _, h := range hardest {
		fmt.Printf("  hard net %-6s CC0=%d CC1=%d CO=%d\n", h.Name, h.CC0, h.CC1, h.CO)
	}

	// 2. Generate tests for every collapsed stuck-at fault.
	tests := design.Generate(core.GenerateOptions{Engine: atpg.EnginePodem, Compact: true})
	fmt.Printf("\n%d patterns cover %.0f%% of %d fault classes\n",
		len(tests.Patterns), tests.Coverage*100, tests.TargetN)
	for i, p := range tests.Patterns {
		fmt.Printf("  t%d: ", i)
		for _, b := range p {
			if b {
				fmt.Print("1")
			} else {
				fmt.Print("0")
			}
		}
		fmt.Println()
	}

	// 3. The economics (§I.C).
	fmt.Println()
	fmt.Print(design.BuildReport(tests))
}
