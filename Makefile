# Standard entry points for the DFT toolkit. `make check` is the
# pre-commit gate: build, vet, and the full test suite under the race
# detector.

GO ?= go

.PHONY: all build vet test race race-telemetry race-fault race-sim race-service race-compact race-diagnose race-advise check fuzz fuzz-smoke bench bench-json bench-faultsim bench-faultpar bench-sim bench-service bench-compact bench-diagnose bench-advise clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-telemetry covers the span registry and the lock-free Progress
# primitive — concurrently ticked by engine workers while the monitor
# goroutine and /metrics scrapes read them.
race-telemetry:
	$(GO) test -race ./internal/telemetry/...

# race-fault gives fast feedback on the engine's shard merge — the one
# place in the tree with lock-free concurrent writes — before the full
# race suite runs.
race-fault:
	$(GO) test -race ./internal/fault/...

# race-sim covers the compiled-kernel program cache, the other shared
# structure hit concurrently by every simulation worker.
race-sim:
	$(GO) test -race ./internal/sim/...

# race-service covers the dftd job server — queue, worker pool, result
# cache and graceful drain all exercise shared state under load.
race-service:
	$(GO) test -race ./internal/service/...

# race-compact covers the compaction engine's sharded replay sessions —
# worker-invariance tests drive the same session at several sharding
# degrees.
race-compact:
	$(GO) test -race ./internal/compact/...

# race-diagnose covers the fault-dictionary build (engine detail grades
# at several backends and worker counts must agree byte-for-byte) and
# the pooled per-dictionary simulator shared by concurrent lookups.
race-diagnose:
	$(GO) test -race ./internal/diagnose/...

# race-advise covers the closed-loop advisor — sharded probe sessions
# plus the long-running service job kind whose mid-run cancellation and
# per-iteration checkpointing must stay clean under the race detector.
race-advise:
	$(GO) test -race ./internal/advise/... ./internal/service/...

check: build vet race-telemetry race-fault race-sim race-service race-compact race-diagnose race-advise race fuzz-smoke

# fuzz runs the coverage-guided differential fuzz targets: the compiled
# kernel against the interpreter at every execution width, and every
# fault-simulation backend/worker/drop configuration against the serial
# baseline. FUZZTIME bounds each target.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzKernelEquivalence -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -run='^$$' -fuzz=FuzzBackendEquivalence -fuzztime=$(FUZZTIME) ./internal/fault

# fuzz-smoke is the short differential-fuzz pass that `make check` and
# scripts/check.sh share: same targets as fuzz, bounded by SMOKETIME,
# so the pre-commit gate always replays the seed corpora plus a short
# guided search.
SMOKETIME ?= 10s
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=$(SMOKETIME)

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the benchmarks and leaves the accumulated telemetry
# as a dft.run-report/v1 document in BENCH_telemetry.json.
bench-json:
	DFT_BENCH_JSON=BENCH_telemetry.json $(GO) test -bench=. -benchmem .

# bench-faultsim measures engine scaling at 1/2/4/8 workers and leaves
# the shard counters as a dft.run-report/v1 document.
bench-faultsim:
	DFT_BENCH_JSON=BENCH_faultsim.json $(GO) test -bench=BenchmarkEngineScaling -benchmem .

# bench-faultpar compares the fault-parallel speed tier (faultparallel
# SPMF and cpt critical-path tracing) against the PPSFP baseline on a
# large no-drop grading, leaving the backend work counters as a
# dft.run-report/v1 document.
bench-faultpar:
	DFT_BENCH_JSON=BENCH_faultpar.json $(GO) test -bench='BenchmarkEngineScaling/(nodrop|fewpats)' -benchmem .

# bench-sim measures the interpreted vs compiled good-machine kernels
# (scalar word and blocked) and leaves the kernel counters as a
# dft.run-report/v1 document.
bench-sim:
	DFT_BENCH_JSON=BENCH_simkernel.json $(GO) test -bench=BenchmarkKernelInterpVsCompiled -benchmem .

# bench-service measures job-service overhead and the progress-
# instrumentation ablation (the instrumented engine must stay within
# 2% of the NoProgress run), leaving the telemetry as a
# dft.run-report/v1 document.
bench-service:
	DFT_BENCH_JSON=BENCH_service.json $(GO) test -bench=BenchmarkService -benchmem .

# bench-compact measures test-set compaction on random and
# deterministic workloads (targets: ≥ 4× on a 1024-pattern random set,
# ≥ 1.5× on the classical per-fault deterministic set) and leaves the
# ratios and engine counters as a dft.run-report/v1 document.
bench-compact:
	DFT_BENCH_JSON=BENCH_compact.json $(GO) test -bench=BenchmarkCompact -benchmem .

# bench-diagnose measures fault-dictionary construction: the
# engine-backed build against the legacy serial per-fault loop (target:
# ≥ 4× on the 8×8 multiplier), plus the full-response tier and the
# compacted-input variant, leaving dictionary sizes and the speedup as
# a dft.run-report/v1 document.
bench-diagnose:
	DFT_BENCH_JSON=BENCH_diagnose.json $(GO) test -bench=BenchmarkDiagnose -benchmem .

# bench-advise measures the closed-loop DFT advisor's coverage-vs-
# overhead trade on the hardcore builtin (must climb from a sub-90%
# baseline to the 99% target) and the 74181 ALU (must stop early at
# zero overhead), leaving the trajectory gauges and probe counters as a
# dft.run-report/v1 document.
bench-advise:
	DFT_BENCH_JSON=BENCH_advise.json $(GO) test -bench=BenchmarkAdvise -benchmem .

clean:
	$(GO) clean ./...
	rm -f BENCH_telemetry.json BENCH_faultsim.json BENCH_faultpar.json BENCH_simkernel.json BENCH_service.json BENCH_compact.json BENCH_diagnose.json BENCH_advise.json
