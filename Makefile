# Standard entry points for the DFT toolkit. `make check` is the
# pre-commit gate: build, vet, and the full test suite under the race
# detector.

GO ?= go

.PHONY: all build vet test race check bench bench-json clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs the benchmarks and leaves the accumulated telemetry
# as a dft.run-report/v1 document in BENCH_telemetry.json.
bench-json:
	DFT_BENCH_JSON=BENCH_telemetry.json $(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...
	rm -f BENCH_telemetry.json
