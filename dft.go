package dft

import (
	"context"
	"io"

	"dft/internal/advise"
	"dft/internal/atpg"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/diagnose"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/service"
	"dft/internal/sim"
)

// This file is the public façade over the toolkit's unified surface:
// the implementation lives under internal/, and the aliases below
// re-export exactly the API a downstream adopter needs — circuit
// loading, the design flow, and the sharded fault-simulation engine
// behind Simulate. Everything else stays internal.

// Circuit is a finalized gate-level netlist (see logic.ParseBench).
type Circuit = logic.Circuit

// Fault is a single stuck-at fault site.
type Fault = fault.Fault

// SimOptions configures Simulate; the zero value selects automatic
// backend choice, one worker per CPU, fault dropping and the primary
// view.
type SimOptions = fault.Options

// SimResult reports per-fault detection outcomes and coverage.
type SimResult = fault.Result

// SimBackend selects the fault-simulation algorithm.
type SimBackend = fault.Backend

// SimView names the nets the tester controls and observes.
type SimView = fault.View

// SimEngine is the reusable sharded fault-simulation scheduler behind
// Simulate; construct one with NewSimEngine to amortize per-worker
// simulator state across runs.
type SimEngine = fault.Engine

// Re-exported SimOptions constants.
const (
	BackendAuto          = fault.Auto
	BackendParallel      = fault.BackendParallel
	BackendDeductive     = fault.BackendDeductive
	BackendSerial        = fault.BackendSerial
	BackendFaultParallel = fault.BackendFaultParallel
	BackendCPT           = fault.BackendCPT
	WorkersAuto          = fault.WorkersAuto
	ParallelismAuto      = fault.ParallelismAuto
	DropOn               = fault.DropOn
	DropOff              = fault.DropOff
)

// ParseSimBackend maps a backend name (as accepted by dftc -engine and
// the service options schema) to a SimBackend, with did-you-mean
// suggestions on unknown names.
func ParseSimBackend(s string) (SimBackend, error) {
	return fault.ParseBackend(s)
}

// Simulate fault-simulates the pattern set against the fault list; see
// fault.Simulate. Results are bit-identical for every backend and
// worker count.
func Simulate(ctx context.Context, c *Circuit, faults []Fault, patterns [][]bool, opts SimOptions) (*SimResult, error) {
	return fault.Simulate(ctx, c, faults, patterns, opts)
}

// NewSimEngine prepares a reusable engine for the circuit.
func NewSimEngine(c *Circuit, opts SimOptions) *SimEngine {
	return fault.NewEngine(c, opts)
}

// ReduceMap relates a reduced netlist to its original: per-net images,
// proven constants, and the pass statistics.
type ReduceMap = sim.ReduceMap

// ReduceStats summarizes one netlist reduction pass.
type ReduceStats = sim.ReduceStats

// Reduce returns a smaller, functionally equivalent netlist (constant
// propagation, structural hashing, fanout-free-region collapsing) plus
// the remap table that carries fault sites and views across. The
// interface — PI, PO and flip-flop order and count — is preserved
// exactly.
func Reduce(c *Circuit) (*Circuit, *ReduceMap) {
	return sim.Reduce(c)
}

// FaultUniverse enumerates every uncollapsed stuck-at fault of the
// circuit.
func FaultUniverse(c *Circuit) []Fault {
	return fault.Universe(c)
}

// CompactMode selects the test-set compaction passes; see
// GenerateOptions.CompactMode and ParseCompactMode.
type CompactMode = compact.Mode

// CompactOptions configures CompactPatterns.
type CompactOptions = compact.Options

// CompactStats reports what a compaction run did.
type CompactStats = compact.Stats

// Re-exported CompactMode constants.
const (
	CompactOff     = compact.ModeOff
	CompactReverse = compact.ModeReverse
	CompactStatic  = compact.ModeStatic
	CompactDynamic = compact.ModeDynamic
	CompactFull    = compact.ModeFull
)

// ParseCompactMode maps a mode name (off, reverse, static, dynamic,
// full — as accepted by dftc -compact and the service options schema)
// to a CompactMode, with did-you-mean suggestions on unknown names.
func ParseCompactMode(s string) (CompactMode, error) {
	return compact.ParseMode(s)
}

// CompactPatterns compacts a fully-specified pattern set against the
// fault list by reverse-order replay; the kept set detects exactly
// what the input did. See internal/compact for the cube-level entry
// points, reached through GenerateOptions.CompactMode.
func CompactPatterns(ctx context.Context, c *Circuit, faults []Fault, patterns [][]bool, opt CompactOptions) ([][]bool, *CompactStats, error) {
	return compact.Patterns(ctx, c, atpg.PrimaryView(c), faults, patterns, opt)
}

// Design is a circuit moving through the DFT flow.
type Design = core.Design

// GenerateOptions tunes Design.Generate; its Workers field has the
// same meaning as SimOptions.Workers.
type GenerateOptions = core.GenerateOptions

// TestSet is the outcome of test generation.
type TestSet = core.TestSet

// Report summarizes the flow economics for a test set.
type Report = core.Report

// Load parses a .bench document into a Design.
func Load(name string, r io.Reader) (*Design, error) {
	return core.Load(name, r)
}

// LoadString is Load over a string.
func LoadString(name, src string) (*Design, error) {
	return core.LoadString(name, src)
}

// FromCircuit wraps an existing finalized circuit.
func FromCircuit(c *Circuit) *Design {
	return core.FromCircuit(c)
}

// FaultDictionary maps observed failing responses back to candidate
// fault sites: a compact pass/fail dictionary built through the
// sharded engine, with exact lookup, Hamming-ranked truncated lookup,
// adaptive narrowing and a versioned binary encoding.
type FaultDictionary = diagnose.Dictionary

// DiagnoseOptions configures BuildDictionary; the zero value selects
// automatic backend choice and the primary view.
type DiagnoseOptions = diagnose.Options

// DiagnoseCandidate is one ranked suspect from FaultDictionary.Rank.
type DiagnoseCandidate = diagnose.Candidate

// FailSignature is a pass/fail response string over the dictionary's
// pattern set; see ParseFailSignature for the wire form.
type FailSignature = diagnose.Signature

// BuildDictionary fault-simulates every fault against the pattern set
// through the engine and stores the packed per-pattern detect bits.
// Rows are bit-identical for every backend and worker count.
func BuildDictionary(ctx context.Context, c *Circuit, faults []Fault, patterns [][]bool, opts DiagnoseOptions) (*FaultDictionary, error) {
	return diagnose.Build(ctx, c, faults, patterns, opts)
}

// DecodeDictionary reads a dictionary previously written with
// FaultDictionary.Encode, verifying magic, dimensions and checksum;
// call Attach before simulating new evidence against it.
func DecodeDictionary(r io.Reader) (*FaultDictionary, error) {
	return diagnose.Decode(r)
}

// ParseFailSignature parses a tester response string of '0' (pass) and
// '1' (fail) characters, one per applied pattern.
func ParseFailSignature(s string) (FailSignature, error) {
	return diagnose.ParseSignature(s)
}

// ParseFault parses a fault name in the "g12 s-a-0" / "g12.in3 s-a-1"
// form produced by Fault.String; validate against a circuit with
// Fault.Validate.
func ParseFault(s string) (Fault, error) {
	return fault.ParseFault(s)
}

// AdviseOptions configures Advise; the zero value asks for 99% fault
// coverage within a 50% gate-overhead budget in at most 32 steps.
type AdviseOptions = advise.Options

// AdvisePlan is the advisor's machine-readable output: the ordered
// interventions, their coverage/overhead trajectory, and the final
// instrumented netlist (with a materialized scan chain when storage
// elements were scanned).
type AdvisePlan = advise.Plan

// AdviseStep is one applied intervention with its measured effect.
type AdviseStep = advise.Step

// Advise closes the DFT loop on a circuit: probe with bounded
// ATPG/fault simulation, score candidate test points and partial-scan
// conversions by predicted coverage gain per gate of overhead, apply
// the cheapest, and repeat until the coverage target is met or the
// budget is spent. Coverage is monotone non-decreasing step over
// step, and the whole run is a pure function of its seed. On context
// cancellation the partial plan is returned alongside the error.
func Advise(ctx context.Context, c *Circuit, opt AdviseOptions) (*AdvisePlan, error) {
	return advise.Run(ctx, c, opt)
}

// Service is the DFT-as-a-service job server: an http.Handler
// exposing fault simulation, ATPG, fault diagnosis, differential
// fuzzing and closed-loop DFT advising as asynchronous jobs with a
// bounded queue, worker pool, result cache and admission control. It
// is the library form of the dftd daemon.
type Service = service.Server

// ServiceConfig sizes a Service; the zero value is a working
// development configuration.
type ServiceConfig = service.Config

// ServiceJobRequest is the POST /v1/jobs payload accepted by
// Service.Submit and the HTTP surface.
type ServiceJobRequest = service.JobRequest

// NewService starts a job server. Mount it under any http.Server
// (it implements http.Handler) and stop it with Shutdown, which
// drains in-flight jobs and returns a final telemetry report.
func NewService(cfg ServiceConfig) *Service {
	return service.New(cfg)
}
